// Package experiments regenerates every table and figure of the paper's
// evaluation. Each Fig*/Table* method returns printable output; cmd/figures
// runs them all and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"reramsim/internal/core"
	"reramsim/internal/jobs"
	"reramsim/internal/memsys"
	"reramsim/internal/obs"
	"reramsim/internal/par"
	"reramsim/internal/trace"
	"reramsim/internal/xpoint"
)

// Suite owns a calibrated configuration plus lazily built schemes and
// cached simulation results, so figures sharing inputs do not recompute
// them. A Suite is safe for concurrent use: cache misses are deduplicated
// per key (two callers racing on the same scheme, simulation or variant
// share one execution instead of running it twice), and sweeps fan their
// independent simulations out on the internal/par worker pool.
type Suite struct {
	Cfg    xpoint.Config // calibrated baseline array configuration
	MemCfg memsys.Config

	mu      sync.Mutex
	ctx     context.Context // cancels between simulations; nil = Background
	parent  *Suite          // variant suites follow their parent's context
	schemes map[string]*core.Scheme
	sims    map[string]*memsys.Result

	// solver is the cold-op pricing mode every scheme this suite builds
	// enables (ForSolver). The zero value is the exact Tier-1 reference.
	solver core.SolverMode

	// solverKids caches the ForSolver sub-suites; their caches must stay
	// separate from the parent's (same keys, different pricing).
	solverKids map[core.SolverMode]*Suite

	// metrics holds the per-simulation observability snapshot (registry
	// delta across the run) keyed scheme/workload, captured while
	// obs.Enabled() so paper tables can be cross-checked against the
	// internal distributions that produced them. Captured runs serialize
	// through obs.Capture, so each snapshot is exact — it contains that
	// simulation's activity and nothing else, even when other sims run
	// concurrently.
	metrics map[string]obs.Snapshot

	// variant suites for the sweep figures (array size, node, Kr).
	variants map[string]*Suite

	// engine, when attached, makes PrimeSims run grids as crash-safe
	// journaled jobs (internal/jobs): completed cells are checkpointed,
	// resumed runs skip them, and panics quarantine a cell instead of
	// failing the sweep. Only the root suite carries an engine — variant
	// sub-suites simulate under different array configs but share cell
	// keys, so routing them through the same journal would collide.
	engine *jobs.Engine

	// Per-key in-flight tracking: a second caller that misses a cache
	// while the first caller is still computing the same key waits for
	// that result instead of running the computation twice.
	schemeFlight  par.Group[string, *core.Scheme]
	simFlight     par.Group[string, *memsys.Result]
	variantFlight par.Group[string, *Suite]
}

// NewSuite calibrates the default configuration and prepares caches.
// accessesPerCore bounds each simulation's length (0 selects the default).
func NewSuite(accessesPerCore int) (*Suite, error) {
	return NewSuiteWithConfig(xpoint.DefaultConfig(), accessesPerCore)
}

// NewSuiteWithConfig calibrates an arbitrary array configuration.
func NewSuiteWithConfig(cfg xpoint.Config, accessesPerCore int) (*Suite, error) {
	p, err := xpoint.CalibrateLatency(cfg, xpoint.BestCaseLatency, xpoint.WorstCaseLatency)
	if err != nil {
		return nil, err
	}
	cfg.Params = p
	return newSuitePrecalibrated(cfg, accessesPerCore), nil
}

// newSuitePrecalibrated wraps a configuration whose Eq. 1 constants are
// already fitted. The Fig. 18-20 sweeps use this: device constants are
// fitted once on the default array and held fixed while geometry or
// selector parameters vary, exactly as in the paper.
func newSuitePrecalibrated(cfg xpoint.Config, accessesPerCore int) *Suite {
	mc := memsys.DefaultConfig()
	if accessesPerCore > 0 {
		mc.AccessesPerCore = accessesPerCore
	}
	return &Suite{
		Cfg:      cfg,
		MemCfg:   mc,
		schemes:  make(map[string]*core.Scheme),
		sims:     make(map[string]*memsys.Result),
		metrics:  make(map[string]obs.Snapshot),
		variants: make(map[string]*Suite),
	}
}

// SetContext attaches a cancellation context: experiments check it
// between simulations, so an interrupted sweep returns promptly with
// the runs it completed instead of finishing the whole grid. Variant
// sub-suites follow their parent's context live (unless they are given
// one of their own), so cancelling the parent also stops in-flight
// variant sweeps.
func (s *Suite) SetContext(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctx = ctx
}

// Context returns the attached context; a variant suite without its own
// context inherits its parent's, and Background is the fallback.
func (s *Suite) Context() context.Context {
	s.mu.Lock()
	ctx, parent := s.ctx, s.parent
	s.mu.Unlock()
	if ctx != nil {
		return ctx
	}
	if parent != nil {
		return parent.Context()
	}
	return context.Background()
}

// schemeBuilders maps the §VI configuration names to constructors.
var schemeBuilders = map[string]func(xpoint.Config) (*core.Scheme, error){
	"Base":         core.Baseline,
	"Static-3.70V": func(c xpoint.Config) (*core.Scheme, error) { return core.StaticOverdrive(c, 3.7) },
	"Hard":         core.Hard,
	"Hard+Sys":     core.HardSys,
	"DRVR":         core.DRVROnly,
	"DRVR+PR":      core.DRVRPR,
	"UDRVR+PR":     core.UDRVRPR,
	"UDRVR-3.94":   core.UDRVR394,
	"ora-64x64":    func(c xpoint.Config) (*core.Scheme, error) { return core.Oracle(c, 64) },
	"ora-128x128":  func(c xpoint.Config) (*core.Scheme, error) { return core.Oracle(c, 128) },
	"ora-256x256":  func(c xpoint.Config) (*core.Scheme, error) { return core.Oracle(c, 256) },
}

// SchemeNames lists the available configurations in evaluation order.
func SchemeNames() []string {
	return []string{
		"Base", "Static-3.70V", "Hard", "Hard+Sys", "DRVR", "DRVR+PR",
		"UDRVR+PR", "UDRVR-3.94", "ora-64x64", "ora-128x128", "ora-256x256",
	}
}

// Scheme returns (building and caching on first use) a named scheme.
// Concurrent first uses of the same name share one calibration.
func (s *Suite) Scheme(name string) (*core.Scheme, error) {
	s.mu.Lock()
	sc, ok := s.schemes[name]
	s.mu.Unlock()
	if ok {
		return sc, nil
	}
	sc, _, err := s.schemeFlight.Do(name, func() (*core.Scheme, error) {
		// Re-check: this flight may start after a previous one for the
		// same name already stored its result.
		s.mu.Lock()
		sc, ok := s.schemes[name]
		s.mu.Unlock()
		if ok {
			return sc, nil
		}
		build, ok := schemeBuilders[name]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown scheme %q", name)
		}
		if obs.SpansEnabled() {
			defer obs.SpanScope("scheme:" + name)()
		}
		sc, err := build(s.Cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s: %w", name, err)
		}
		if s.solver != core.SolverExact {
			if err := sc.EnableSolver(s.solver); err != nil {
				return nil, fmt.Errorf("experiments: %s solver for %s: %w", s.solver, name, err)
			}
		}
		s.mu.Lock()
		s.schemes[name] = sc
		s.mu.Unlock()
		return sc, nil
	})
	return sc, err
}

// Sim runs (and caches) a simulation of workload under scheme. Two
// callers that both miss the cache for the same key share one execution:
// the second waits for the first result instead of running the
// simulation twice.
func (s *Suite) Sim(scheme, workload string) (*memsys.Result, error) {
	return s.SimContext(s.Context(), scheme, workload)
}

// SimContext is Sim under an explicit context: the run is skipped when
// ctx is already cancelled, and a jobs heartbeat carried by ctx (the
// engine's stall watchdog) is wired into the simulation's event loop.
// Concurrent callers for one key still share a single execution; the
// first caller's context governs that execution.
func (s *Suite) SimContext(ctx context.Context, scheme, workload string) (*memsys.Result, error) {
	key := scheme + "/" + workload
	s.mu.Lock()
	r, ok := s.sims[key]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	r, _, err := s.simFlight.Do(key, func() (*memsys.Result, error) {
		return s.runSim(ctx, key, scheme, workload)
	})
	return r, err
}

// runSim executes one simulation and stores its result (plus, with
// observability on, its exact metric snapshot). It re-checks the cache
// first: a caller that missed the cache may enter a fresh flight only
// after the previous flight for the same key already stored its result.
func (s *Suite) runSim(ctx context.Context, key, scheme, workload string) (*memsys.Result, error) {
	s.mu.Lock()
	r, ok := s.sims[key]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	if err := ctx.Err(); err != nil {
		if cause := context.Cause(ctx); cause != nil {
			err = cause
		}
		return nil, fmt.Errorf("experiments: %s on %s: %w", scheme, workload, err)
	}
	if obs.SpansEnabled() {
		var stop func()
		ctx, stop = obs.StartSpan(ctx, "sim:"+key)
		defer stop()
	}
	sc, err := s.Scheme(scheme)
	if err != nil {
		return nil, err
	}
	b, err := trace.ByName(workload)
	if err != nil {
		return nil, err
	}
	mc := s.MemCfg
	// Feed the stall watchdog from inside the event loop when this run is
	// an engine cell; Heartbeat never influences results.
	mc.Heartbeat = jobs.HeartbeatFunc(ctx)

	var snap obs.Snapshot
	capture := obs.Enabled()
	if capture {
		// Exact attribution: obs.Capture serializes captured windows
		// process-wide, so the delta holds this run's counts and nothing
		// else. The price is that instrumented simulations run one at a
		// time; without -metrics (the fast path) sims stay fully parallel.
		snap = obs.Capture(func() { r, err = memsys.Simulate(sc, b, mc) })
	} else {
		r, err = memsys.Simulate(sc, b, mc)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", scheme, workload, err)
	}
	s.mu.Lock()
	s.sims[key] = r
	if capture {
		s.metrics[key] = snap
	}
	s.mu.Unlock()
	return r, nil
}

// SimPair identifies one (scheme, workload) simulation of a sweep.
type SimPair struct {
	Scheme   string
	Workload string
}

// crossPairs builds the schemes x workloads product in deterministic
// (row-major) order.
func crossPairs(schemes, workloads []string) []SimPair {
	pairs := make([]SimPair, 0, len(schemes)*len(workloads))
	for _, sc := range schemes {
		for _, w := range workloads {
			pairs = append(pairs, SimPair{Scheme: sc, Workload: w})
		}
	}
	return pairs
}

// PrimeSims fans the given simulations out across the par worker pool,
// filling the Suite's result cache. Sweep renderers call it before
// their serial formatting loop: the loop then reads cache hits, so the
// rendered output is byte-identical to a fully serial (-jobs=1) run
// while the simulations themselves use every worker. Duplicate pairs
// collapse onto one execution via the per-key in-flight tracking.
//
// With an engine attached (SetEngine), the grid instead runs as
// crash-safe journaled jobs: completed cells checkpoint to disk, a
// resumed engine serves them without re-simulating, and a quarantined
// cell (panic/timeout/exhausted retries) yields an error wrapping
// jobs.ErrQuarantined after the rest of the grid finishes.
func (s *Suite) PrimeSims(pairs []SimPair) error {
	ctx, stopSpan := obs.StartSpan(s.Context(), "experiments.sweep")
	defer stopSpan()
	s.mu.Lock()
	eng := s.engine
	s.mu.Unlock()
	if eng != nil {
		rep, err := s.runGrid(ctx, eng, pairs)
		if err != nil {
			return err
		}
		if !rep.Complete() {
			keys := make([]string, len(rep.Quarantined))
			for i, q := range rep.Quarantined {
				keys[i] = q.Key
			}
			return fmt.Errorf("experiments: %d cell(s) quarantined (%s): %w",
				len(keys), strings.Join(keys, ", "), jobs.ErrQuarantined)
		}
		return nil
	}
	return par.ForEach(ctx, len(pairs), func(i int) error {
		_, err := s.SimContext(ctx, pairs[i].Scheme, pairs[i].Workload)
		return err
	})
}

// SetEngine attaches a jobs engine: subsequent PrimeSims calls run
// their grids through it (journaled, resumable, panic-isolated). Pass
// nil to detach. Variant sub-suites never inherit the engine.
func (s *Suite) SetEngine(eng *jobs.Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.engine = eng
}

// Metrics returns the observability snapshot captured for a cached
// simulation (the registry delta across exactly that run). The second
// result is false when the simulation has not run, or ran with
// observability off.
func (s *Suite) Metrics(scheme, workload string) (obs.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.metrics[scheme+"/"+workload]
	return snap, ok
}

// MetricsKeys lists the scheme/workload keys with captured snapshots.
func (s *Suite) MetricsKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.metrics))
	for k := range s.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ForSolver returns a suite pricing writes through the given solver mode:
// the receiver itself when the mode already matches (so the exact default
// costs nothing), otherwise a cached sub-suite sharing the calibrated
// configuration but none of the scheme/simulation caches — the modes may
// price differently (surrogate) and must not serve one another's results.
// The sub-suite follows the parent's cancellation context live.
func (s *Suite) ForSolver(mode core.SolverMode) *Suite {
	if mode == s.solver {
		return s
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.solverKids[mode]; ok {
		return v
	}
	v := newSuitePrecalibrated(s.Cfg, 0)
	v.MemCfg = s.MemCfg
	v.parent = s
	v.solver = mode
	if s.solverKids == nil {
		s.solverKids = make(map[core.SolverMode]*Suite)
	}
	s.solverKids[mode] = v
	return v
}

// Solver reports the pricing mode this suite's schemes enable.
func (s *Suite) Solver() core.SolverMode { return s.solver }

// Variant returns a cached sub-suite with a modified array configuration
// (used by the Fig. 18-20 sweeps). The key must uniquely identify the
// modification. The sub-suite simulates the same system as its parent —
// the full memory configuration (access budget, caches, seeds, fault
// settings) carries over — and follows the parent's cancellation
// context live. Concurrent first uses of the same key share one
// construction.
func (s *Suite) Variant(key string, mod func(*xpoint.Config)) (*Suite, error) {
	s.mu.Lock()
	v, ok := s.variants[key]
	s.mu.Unlock()
	if ok {
		return v, nil
	}
	v, _, err := s.variantFlight.Do(key, func() (*Suite, error) {
		s.mu.Lock()
		v, ok := s.variants[key]
		s.mu.Unlock()
		if ok {
			return v, nil
		}
		cfg := s.Cfg
		mod(&cfg)
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: variant %s: %w", key, err)
		}
		v = newSuitePrecalibrated(cfg, 0)
		v.MemCfg = s.MemCfg
		v.parent = s // sub-suite sweeps honour the parent's cancellation
		v.solver = s.solver
		s.mu.Lock()
		s.variants[key] = v
		s.mu.Unlock()
		return v, nil
	})
	return v, err
}

// Workloads returns the Table IV workload names in paper order.
func Workloads() []string {
	bs := trace.Benchmarks()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}
