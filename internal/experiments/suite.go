// Package experiments regenerates every table and figure of the paper's
// evaluation. Each Fig*/Table* method returns printable output; cmd/figures
// runs them all and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"reramsim/internal/core"
	"reramsim/internal/memsys"
	"reramsim/internal/obs"
	"reramsim/internal/trace"
	"reramsim/internal/xpoint"
)

// Suite owns a calibrated configuration plus lazily built schemes and
// cached simulation results, so figures sharing inputs do not recompute
// them. A Suite is safe for concurrent use.
type Suite struct {
	Cfg    xpoint.Config // calibrated baseline array configuration
	MemCfg memsys.Config

	mu      sync.Mutex
	ctx     context.Context // cancels between simulations; nil = Background
	schemes map[string]*core.Scheme
	sims    map[string]*memsys.Result

	// metrics holds the per-simulation observability snapshot (registry
	// delta across the run) keyed scheme/workload, captured while
	// obs.Enabled() so paper tables can be cross-checked against the
	// internal distributions that produced them.
	metrics map[string]obs.Snapshot

	// variant suites for the sweep figures (array size, node, Kr).
	variants map[string]*Suite
}

// NewSuite calibrates the default configuration and prepares caches.
// accessesPerCore bounds each simulation's length (0 selects the default).
func NewSuite(accessesPerCore int) (*Suite, error) {
	return NewSuiteWithConfig(xpoint.DefaultConfig(), accessesPerCore)
}

// NewSuiteWithConfig calibrates an arbitrary array configuration.
func NewSuiteWithConfig(cfg xpoint.Config, accessesPerCore int) (*Suite, error) {
	p, err := xpoint.CalibrateLatency(cfg, xpoint.BestCaseLatency, xpoint.WorstCaseLatency)
	if err != nil {
		return nil, err
	}
	cfg.Params = p
	return newSuitePrecalibrated(cfg, accessesPerCore), nil
}

// newSuitePrecalibrated wraps a configuration whose Eq. 1 constants are
// already fitted. The Fig. 18-20 sweeps use this: device constants are
// fitted once on the default array and held fixed while geometry or
// selector parameters vary, exactly as in the paper.
func newSuitePrecalibrated(cfg xpoint.Config, accessesPerCore int) *Suite {
	mc := memsys.DefaultConfig()
	if accessesPerCore > 0 {
		mc.AccessesPerCore = accessesPerCore
	}
	return &Suite{
		Cfg:      cfg,
		MemCfg:   mc,
		schemes:  make(map[string]*core.Scheme),
		sims:     make(map[string]*memsys.Result),
		metrics:  make(map[string]obs.Snapshot),
		variants: make(map[string]*Suite),
	}
}

// SetContext attaches a cancellation context: experiments check it
// between simulations, so an interrupted sweep returns promptly with
// the runs it completed instead of finishing the whole grid.
func (s *Suite) SetContext(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctx = ctx
}

// Context returns the attached context (Background when none is set).
func (s *Suite) Context() context.Context {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx == nil {
		return context.Background()
	}
	return s.ctx
}

// schemeBuilders maps the §VI configuration names to constructors.
var schemeBuilders = map[string]func(xpoint.Config) (*core.Scheme, error){
	"Base":         core.Baseline,
	"Static-3.70V": func(c xpoint.Config) (*core.Scheme, error) { return core.StaticOverdrive(c, 3.7) },
	"Hard":         core.Hard,
	"Hard+Sys":     core.HardSys,
	"DRVR":         core.DRVROnly,
	"DRVR+PR":      core.DRVRPR,
	"UDRVR+PR":     core.UDRVRPR,
	"UDRVR-3.94":   core.UDRVR394,
	"ora-64x64":    func(c xpoint.Config) (*core.Scheme, error) { return core.Oracle(c, 64) },
	"ora-128x128":  func(c xpoint.Config) (*core.Scheme, error) { return core.Oracle(c, 128) },
	"ora-256x256":  func(c xpoint.Config) (*core.Scheme, error) { return core.Oracle(c, 256) },
}

// SchemeNames lists the available configurations in evaluation order.
func SchemeNames() []string {
	return []string{
		"Base", "Static-3.70V", "Hard", "Hard+Sys", "DRVR", "DRVR+PR",
		"UDRVR+PR", "UDRVR-3.94", "ora-64x64", "ora-128x128", "ora-256x256",
	}
}

// Scheme returns (building and caching on first use) a named scheme.
func (s *Suite) Scheme(name string) (*core.Scheme, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sc, ok := s.schemes[name]; ok {
		return sc, nil
	}
	build, ok := schemeBuilders[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scheme %q", name)
	}
	sc, err := build(s.Cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: building %s: %w", name, err)
	}
	s.schemes[name] = sc
	return sc, nil
}

// Sim runs (and caches) a simulation of workload under scheme.
func (s *Suite) Sim(scheme, workload string) (*memsys.Result, error) {
	key := scheme + "/" + workload
	s.mu.Lock()
	if r, ok := s.sims[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	if err := s.Context().Err(); err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", scheme, workload, err)
	}
	sc, err := s.Scheme(scheme)
	if err != nil {
		return nil, err
	}
	b, err := trace.ByName(workload)
	if err != nil {
		return nil, err
	}
	// With observability on, bracket the run with registry snapshots so
	// the delta attributes counters to this simulation. Concurrent Sim
	// calls interleave their counts; the attribution is then best-effort.
	capture := obs.Enabled()
	var before obs.Snapshot
	if capture {
		before = obs.Default().Snapshot()
	}
	r, err := memsys.Simulate(sc, b, s.MemCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", scheme, workload, err)
	}
	s.mu.Lock()
	s.sims[key] = r
	if capture {
		s.metrics[key] = obs.Default().Snapshot().Delta(before)
	}
	s.mu.Unlock()
	return r, nil
}

// Metrics returns the observability snapshot captured for a cached
// simulation (the registry delta across that run). The second result is
// false when the simulation has not run, or ran with observability off.
func (s *Suite) Metrics(scheme, workload string) (obs.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.metrics[scheme+"/"+workload]
	return snap, ok
}

// MetricsKeys lists the scheme/workload keys with captured snapshots.
func (s *Suite) MetricsKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.metrics))
	for k := range s.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Variant returns a cached sub-suite with a modified array configuration
// (used by the Fig. 18-20 sweeps). The key must uniquely identify the
// modification.
func (s *Suite) Variant(key string, mod func(*xpoint.Config)) (*Suite, error) {
	s.mu.Lock()
	if v, ok := s.variants[key]; ok {
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()

	cfg := s.Cfg
	mod(&cfg)
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: variant %s: %w", key, err)
	}
	v := newSuitePrecalibrated(cfg, s.MemCfg.AccessesPerCore)
	s.mu.Lock()
	v.ctx = s.ctx // sub-suite sweeps honour the same cancellation
	s.variants[key] = v
	s.mu.Unlock()
	return v, nil
}

// Workloads returns the Table IV workload names in paper order.
func Workloads() []string {
	bs := trace.Benchmarks()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}
