package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestReliabilitySweep runs the registered fault comparison on a small
// access budget: every requested scheme must produce a row with the
// profile's injection actually engaged, and the baseline must retry
// more than the regulated scheme (the sweep's reason to exist).
func TestReliabilitySweep(t *testing.T) {
	s := suite()
	rep, err := s.ReliabilitySweep(context.Background(), "margin", "mcf_m",
		[]string{"Base", "UDRVR+PR"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted {
		t.Fatal("un-cancelled sweep reported Aborted")
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rep.Rows))
	}
	base, udrvr := rep.Rows[0], rep.Rows[1]
	if base.Rel.VerifyFailures == 0 {
		t.Error("margin profile produced no verify failures on the baseline")
	}
	if udrvr.Rel.WriteRetries >= base.Rel.WriteRetries {
		t.Errorf("UDRVR+PR retries %d not below baseline %d",
			udrvr.Rel.WriteRetries, base.Rel.WriteRetries)
	}
	if out := rep.String(); !strings.Contains(out, "Base") || !strings.Contains(out, "UDRVR+PR") {
		t.Errorf("report rendering missing scheme rows:\n%s", out)
	}

	// The sweep must not have polluted the fault-free result cache.
	r, err := s.Sim("Base", "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	if r.Reliability != nil {
		t.Error("cached fault-free result carries a Reliability block")
	}
}

// TestReliabilitySweepCancelled pins the partial-results contract: a
// cancelled context aborts the sweep between runs without an error,
// returning whatever completed and setting Aborted.
func TestReliabilitySweepCancelled(t *testing.T) {
	s := suite()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := s.ReliabilitySweep(ctx, "margin", "mcf_m", []string{"Base"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aborted {
		t.Error("cancelled sweep did not report Aborted")
	}
	if len(rep.Rows) != 0 {
		t.Errorf("cancelled-before-start sweep returned %d rows", len(rep.Rows))
	}
	if out := rep.String(); !strings.Contains(out, "partial") {
		t.Errorf("aborted report does not mention partial results:\n%s", out)
	}
}

// TestSuiteContextCancelsSim: a Suite with a cancelled context refuses
// to start new simulations (cached results stay available).
func TestSuiteContextCancelsSim(t *testing.T) {
	s, err := NewSuite(400)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.SetContext(ctx)
	if _, err := s.Sim("Base", "mil_m"); err != nil {
		t.Fatalf("live context blocked a simulation: %v", err)
	}
	cancel()
	if _, err := s.Sim("Base", "mil_m"); err != nil {
		t.Fatalf("cancellation evicted a cached result: %v", err)
	}
	if _, err := s.Sim("Base", "ast_m"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled for a new simulation, got %v", err)
	}
}
