package experiments

import (
	"fmt"

	"reramsim/internal/filament"
	"reramsim/internal/stats"
	"reramsim/internal/xpoint"
)

// The experiments in this file go beyond the paper's evaluation: they
// exercise substrates the paper assumes (read integrity, the microscopic
// origin of Eq. 1) and are labelled "ext" in the registry.

// ExtReadMargin quantifies the §II-B claim that read sneak current is
// benign: the LRS/HRS sense margin across the data path at several row
// positions of the Table I array.
func (s *Suite) ExtReadMargin() (string, error) {
	arr, err := xpoint.New(s.Cfg)
	if err != nil {
		return "", err
	}
	cfg := s.Cfg
	t := stats.NewTable("Extension: read sense margin across the array (all-LRS data path)",
		"row", "near-mux margin", "far-mux margin", "WL current (uA)")
	cols := make([]int, cfg.DataWidth)
	for b := range cols {
		cols[b] = cfg.ColumnOfBit(b, cfg.MuxWidth()-1)
	}
	for _, row := range []int{0, cfg.Size / 2, cfg.Size - 1} {
		res, err := arr.SimulateRead(row, cols)
		if err != nil {
			return "", err
		}
		t.AddF(row,
			fmt.Sprintf("%.3f", res.Margin[0]),
			fmt.Sprintf("%.3f", res.Margin[len(res.Margin)-1]),
			fmt.Sprintf("%.1f", res.Iword*1e6))
	}
	worst, err := arr.WorstReadMargin()
	if err != nil {
		return "", err
	}
	t.AddF("worst", fmt.Sprintf("%.3f", worst), "", "")
	return t.String(), nil
}

// ExtEq1Kinetics derives Eq. 1 from the filament-dissolution transient:
// switching times across the operating voltage range and the fitted
// exponential law.
func (s *Suite) ExtEq1Kinetics() (string, error) {
	m := filament.DefaultModel()
	t := stats.NewTable("Extension: Eq. 1 from filament kinetics",
		"Veff (V)", "switching time")
	for v := 1.8; v <= 3.7; v += 0.2 {
		st := m.SwitchingTime(v)
		t.AddF(fmt.Sprintf("%.1f", v), fmt.Sprintf("%.3g s", st))
	}
	beta, k, residual, err := m.FitEq1(2.0, 3.6, 17)
	if err != nil {
		return "", err
	}
	t.AddF("fit", fmt.Sprintf("Trst = %.3g*exp(-%.2f*V), log-residual %.2f", beta, k, residual))
	return t.String(), nil
}
