package experiments

import (
	"fmt"
	"math"
	"strings"

	"reramsim/internal/core"
	"reramsim/internal/device"
	"reramsim/internal/stats"
	"reramsim/internal/xpoint"
)

// MapBlocks is the sampling granularity of the surface figures, matching
// the paper's 64x64-cell blocks on a 512x512 array.
const MapBlocks = 8

// TableI prints the cell / array / bank model constants.
func (s *Suite) TableI() (string, error) {
	p := s.Cfg.Params
	t := stats.NewTable("Table I: ReRAM cell, CP array and bank models",
		"metric", "description", "value")
	t.AddF("Ion", "LRS cell current during RESET", fmt.Sprintf("%.0fuA", p.Ion*1e6))
	t.AddF("Kr", "nonlinear selectivity of the selector", p.Kr)
	t.AddF("A", "mat size: A WLs x A BLs", s.Cfg.Size)
	t.AddF("n", "bits to read/write", s.Cfg.DataWidth)
	t.AddF("Rwire", "wire resistance between adjacent cells", fmt.Sprintf("%.1f ohm", s.Cfg.Rwire))
	t.AddF("Vrst/Vset", "full selected voltage during RESETs/SETs", fmt.Sprintf("%.0fV", p.Vrst))
	t.AddF("Vrd", "read voltage", fmt.Sprintf("%.1fV", p.Vread))
	t.AddF("K (fitted)", "Eq.1 slope, calibrated per DESIGN.md", fmt.Sprintf("%.3f /V", p.K))
	t.AddF("T0 (fitted)", "Eq.2 time constant", fmt.Sprintf("%.3g s", p.T0))
	return t.String(), nil
}

// Fig1e prints the per-junction wire resistance versus technology node.
func (s *Suite) Fig1e() (string, error) {
	t := stats.NewTable("Fig. 1e: Rwire per junction vs technology node",
		"node", "Rwire (ohm)")
	for _, n := range device.Nodes() {
		t.AddF(n.String(), device.WireResistance(n))
	}
	return t.String(), nil
}

// schemeMaps renders the effective-Vrst, latency and endurance surfaces
// of a scheme (the Fig. 4/6/11/13 triptychs). Sampling follows the
// suite's cancellation context, so an interrupted run aborts mid-map
// instead of solving the remaining blocks.
func (s *Suite) schemeMaps(scheme string, withEff, withLat, withEnd bool) (string, error) {
	sc, err := s.Scheme(scheme)
	if err != nil {
		return "", err
	}
	ctx := s.Context()
	var b strings.Builder
	if withEff {
		m, err := sc.EffectiveVrstMapCtx(ctx, MapBlocks)
		if err != nil {
			return "", err
		}
		b.WriteString(stats.Grid(
			fmt.Sprintf("%s effective Vrst (V); rows bottom-up = distance from write driver", scheme),
			m.Values, func(v float64) string { return fmt.Sprintf("%.3f", v) }))
	}
	if withLat {
		m, err := sc.LatencyMapCtx(ctx, MapBlocks)
		if err != nil {
			return "", err
		}
		b.WriteString(stats.Grid(
			fmt.Sprintf("%s RESET latency (ns)", scheme),
			m.Values, func(v float64) string {
				if math.IsInf(v, 1) {
					return "fail"
				}
				return fmt.Sprintf("%.1f", v*1e9)
			}))
	}
	if withEnd {
		m, err := sc.EnduranceMapCtx(ctx, MapBlocks)
		if err != nil {
			return "", err
		}
		b.WriteString(stats.Grid(
			fmt.Sprintf("%s cell endurance (writes)", scheme),
			m.Values, func(v float64) string { return fmt.Sprintf("%.2g", v) }))
	}
	return b.String(), nil
}

// Fig4 renders the baseline effective-Vrst / latency / endurance maps
// (Fig. 4b-d).
func (s *Suite) Fig4() (string, error) {
	return s.schemeMaps("Base", true, true, true)
}

// Fig6 renders the static 3.7 V over-RESET endurance map (Fig. 6a) and
// the DRVR maps (Fig. 6b-d).
func (s *Suite) Fig6() (string, error) {
	over, err := s.schemeMaps("Static-3.70V", false, false, true)
	if err != nil {
		return "", err
	}
	drvr, err := s.schemeMaps("DRVR", true, true, true)
	if err != nil {
		return "", err
	}
	return over + drvr, nil
}

// Fig7b tabulates the effective Vrst along the left-most bit-line with
// and without DRVR: the staircase of eight sections.
func (s *Suite) Fig7b() (string, error) {
	base, err := s.Scheme("Base")
	if err != nil {
		return "", err
	}
	drvr, err := s.Scheme("DRVR")
	if err != nil {
		return "", err
	}
	t := stats.NewTable("Fig. 7b: effective Vrst of the left-most BL",
		"row", "no DRVR (V)", "DRVR (V)", "DRVR level (V)")
	size := s.Cfg.Size
	for row := size / 32; row < size; row += size / 16 {
		eff := func(sc *core.Scheme) (float64, error) {
			op := sc.MapOp()(row, 0)
			res, err := sc.Array().SimulateReset(op)
			if err != nil {
				return 0, err
			}
			return res.Veff[0], nil
		}
		b, err := eff(base)
		if err != nil {
			return "", err
		}
		d, err := eff(drvr)
		if err != nil {
			return "", err
		}
		t.AddF(row, fmt.Sprintf("%.3f", b), fmt.Sprintf("%.3f", d),
			fmt.Sprintf("%.3f", drvr.Levels().At(row*8/size, 0)))
	}
	return t.String(), nil
}

// Fig11a tabulates the worst-case cell's effective Vrst and the op
// latency against the concurrent RESET count, reproducing the multi-bit
// sweet spot.
func (s *Suite) Fig11a() (string, error) {
	arr, err := xpoint.New(s.Cfg)
	if err != nil {
		return "", err
	}
	t := stats.NewTable("Fig. 11a: worst-case cell under N-bit RESETs (even spread, 3V)",
		"N", "worst Veff (V)", "op latency (ns)", "total current (uA)")
	cfg := s.Cfg
	for n := 1; n <= cfg.DataWidth; n++ {
		cols := make([]int, 0, n)
		for k := n - 1; k >= 0; k-- {
			mux := cfg.DataWidth - 1 - k*cfg.DataWidth/n
			cols = append(cols, cfg.ColumnOfBit(mux, cfg.MuxWidth()-1))
		}
		volts := make([]float64, n)
		for i := range volts {
			volts[i] = cfg.Params.Vrst
		}
		res, err := arr.SimulateReset(xpoint.ResetOp{Row: cfg.Size - 1, Cols: cols, Volts: volts})
		if err != nil {
			return "", err
		}
		t.AddF(n, fmt.Sprintf("%.3f", res.Veff[len(res.Veff)-1]),
			fmt.Sprintf("%.1f", res.Latency*1e9), fmt.Sprintf("%.0f", res.Itotal*1e6))
	}
	return t.String(), nil
}

// Fig11 renders the DRVR+PR maps (Fig. 11b-d).
func (s *Suite) Fig11() (string, error) {
	return s.schemeMaps("DRVR+PR", true, true, true)
}

// Fig13 renders the UDRVR+PR latency and endurance maps (Fig. 13a-b).
func (s *Suite) Fig13() (string, error) {
	return s.schemeMaps("UDRVR+PR", false, true, true)
}
