package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"reramsim/internal/jobs"
	"reramsim/internal/obs"
	"reramsim/internal/par"
)

var (
	resumeSchemes   = []string{"Base", "UDRVR+PR"}
	resumeWorkloads = []string{"mcf_m", "mil_m"}
)

// gridJSON serializes everything a sweep figure would read from the
// suite — the byte-identity probe shared by the resume tests. The suite
// must already be primed.
func gridJSON(t *testing.T, s *Suite) []byte {
	t.Helper()
	type point struct {
		Scheme, Workload string
		IPC              float64
		Reads, Writes    uint64
		AvgReadLatency   float64
		EnergyTotal      float64
	}
	var pts []point
	for _, sc := range resumeSchemes {
		for _, w := range resumeWorkloads {
			r, err := s.Sim(sc, w)
			if err != nil {
				t.Fatal(err)
			}
			pts = append(pts, point{sc, w, r.IPC, r.Reads, r.Writes, r.AvgReadLatency, r.Energy.Total()})
		}
	}
	ext, err := s.ExtReadMargin()
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(struct {
		Ext    string
		Points []point
	}{ext, pts})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func freshSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(400)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jrn"))
	if err != nil {
		t.Fatal(err)
	}
	return len(segs)
}

// testResumeByteIdentical is the satellite-4 scenario: start a journaled
// sweep, cancel it in-process after K cells have checkpointed, then
// resume into a fresh suite and require the final sweep JSON to be
// byte-identical to an uninterrupted engine-less run — with the
// journaled cells served from disk, not re-simulated.
func testResumeByteIdentical(t *testing.T, jobsN int) {
	par.SetJobs(jobsN)
	t.Cleanup(func() { par.SetJobs(0) })
	pairs := crossPairs(resumeSchemes, resumeWorkloads)

	// Reference: uninterrupted, engine-less.
	ref := freshSuite(t)
	if err := ref.PrimeSims(pairs); err != nil {
		t.Fatal(err)
	}
	want := gridJSON(t, ref)

	// Interrupted run: cancel (with a distinctive cause) once the
	// journal holds at least two completed cells.
	dir := t.TempDir()
	s1 := freshSuite(t)
	digest, err := s1.GridDigest(pairs)
	if err != nil {
		t.Fatal(err)
	}
	eng1, err := jobs.Open(jobs.Options{Dir: dir, Digest: digest})
	if err != nil {
		t.Fatal(err)
	}
	errStop := errors.New("test: simulated crash")
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	s1.SetContext(ctx)
	s1.SetEngine(eng1)
	stopWatch := make(chan struct{})
	go func() {
		defer close(stopWatch)
		for {
			if countSegments(t, dir) >= 2 {
				cancel(errStop)
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	perr := s1.PrimeSims(pairs)
	<-stopWatch
	journaled := countSegments(t, dir)
	if perr != nil && !errors.Is(perr, errStop) {
		t.Fatalf("interrupted PrimeSims: err = %v, want the cancellation cause", perr)
	}
	if journaled == 0 {
		t.Fatal("no cells journaled before the simulated crash")
	}

	// Resume into a fresh suite: journaled cells must be served from
	// disk (jobs.resumed metric), the rest simulated, and the rendered
	// JSON byte-identical to the uninterrupted reference.
	obs.SetEnabled(true)
	t.Cleanup(func() {
		obs.SetEnabled(false)
		obs.Default().ResetValues()
	})
	before := obs.Default().Snapshot()

	s2 := freshSuite(t)
	eng2, err := jobs.Open(jobs.Options{Dir: dir, Digest: digest, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	s2.SetEngine(eng2)
	if err := s2.PrimeSims(pairs); err != nil {
		t.Fatal(err)
	}
	delta := obs.Default().Snapshot().Delta(before)
	if got := delta.Counters["jobs.resumed"]; got != uint64(journaled) {
		t.Errorf("jobs.resumed = %d, want %d (the journaled cells must be skipped, not re-run)", got, journaled)
	}
	if got := delta.Counters["jobs.completed"]; got != uint64(len(pairs)-journaled) {
		t.Errorf("jobs.completed = %d, want %d", got, len(pairs)-journaled)
	}
	if got := gridJSON(t, s2); string(got) != string(want) {
		t.Errorf("resumed sweep JSON differs from uninterrupted run:\nwant: %s\ngot:  %s", want, got)
	}
}

func TestResumeByteIdenticalJobs1(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three compact sweeps")
	}
	testResumeByteIdentical(t, 1)
}

func TestResumeByteIdenticalJobs8(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three compact sweeps")
	}
	testResumeByteIdentical(t, 8)
}

// TestPrimeSimsQuarantineWrapsErr: a panicking cell must not fail the
// grid mid-flight — the other cells finish, and PrimeSims reports the
// quarantine as an error wrapping jobs.ErrQuarantined.
func TestPrimeSimsQuarantineWrapsErr(t *testing.T) {
	pairs := crossPairs(resumeSchemes, resumeWorkloads)
	s := freshSuite(t)
	digest, err := s.GridDigest(pairs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := jobs.Open(jobs.Options{Dir: t.TempDir(), Digest: digest, TestPanicKey: "Base/mil_m"})
	if err != nil {
		t.Fatal(err)
	}
	s.SetEngine(eng)
	perr := s.PrimeSims(pairs)
	if !errors.Is(perr, jobs.ErrQuarantined) {
		t.Fatalf("PrimeSims err = %v, want a jobs.ErrQuarantined wrap", perr)
	}
	// Every other cell completed despite the panic.
	for _, p := range pairs {
		if p.Scheme == "Base" && p.Workload == "mil_m" {
			continue
		}
		if _, err := s.Sim(p.Scheme, p.Workload); err != nil {
			t.Errorf("%s/%s did not survive the quarantined neighbour: %v", p.Scheme, p.Workload, err)
		}
	}
}

// TestGridDigestPinsConfig: the digest must be stable for identical
// sweeps and differ when any ingredient of the sweep changes.
func TestGridDigestPinsConfig(t *testing.T) {
	pairs := crossPairs(resumeSchemes, resumeWorkloads)
	a := freshSuite(t)
	b := freshSuite(t)
	da, err := a.GridDigest(pairs)
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.GridDigest(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Errorf("identical sweeps produced different digests:\n%s\n%s", da, db)
	}
	b.MemCfg.Seed = 99
	if d, _ := b.GridDigest(pairs); d == da {
		t.Error("digest ignored a memory-config change")
	}
	b.MemCfg.Seed = a.MemCfg.Seed
	if d, _ := b.GridDigest(pairs[:3]); d == da {
		t.Error("digest ignored a grid change")
	}
	// The heartbeat hook must not enter the digest (json:"-").
	b.MemCfg.Heartbeat = func() {}
	if d, err := b.GridDigest(pairs); err != nil || d != da {
		t.Errorf("digest with heartbeat hook: %q (err %v), want %q", d, err, da)
	}
}
