package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"reramsim/internal/core"
	"reramsim/internal/memsys"
	"reramsim/internal/xpoint"
)

// Distributed-worker glue: a worker process receives the sweep's full
// configuration over the wire (the coordinator ships its calibrated
// xpoint.Config and memsys.Config inside the grid spec) and rebuilds a
// Suite from those plain values without recalibrating — the Eq. 1
// constants arrive already fitted, so the worker's suite is the same
// suite the coordinator owns, and GridDigest recomputed on the worker
// matches the coordinator's digest exactly. Cells then execute through
// RunCell, the same code path a local engine cell runs, which is what
// makes worker-returned payloads byte-identical to locally computed
// ones.

// NewWorkerSuite rebuilds the suite for a distributed sweep from its
// wire configuration: a calibrated array config, the full memory-system
// config and the solver mode name ("" selects the exact reference). No
// calibration runs — the configs are used as shipped.
func NewWorkerSuite(cfg xpoint.Config, mem memsys.Config, solver string) (*Suite, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: worker suite: %w", err)
	}
	s := newSuitePrecalibrated(cfg, 0)
	s.MemCfg = mem
	s.MemCfg.Heartbeat = nil // local hook never crosses the wire
	if solver != "" {
		mode, err := core.ParseSolverMode(solver)
		if err != nil {
			return nil, fmt.Errorf("experiments: worker suite: %w", err)
		}
		// ForSolver after the MemCfg assignment: the sub-suite snapshots
		// the memory config at creation.
		s = s.ForSolver(mode)
	}
	return s, nil
}

// RunCell executes one grid cell by its journal key ("scheme/workload")
// and returns the cell's journal payload — produced by the exact code a
// local engine cell runs (SimContext + JSON marshal), so a worker's
// record bytes are interchangeable with a local run's.
func (s *Suite) RunCell(ctx context.Context, key string) ([]byte, error) {
	scheme, workload, ok := strings.Cut(key, "/")
	if !ok || scheme == "" || workload == "" {
		return nil, fmt.Errorf("experiments: malformed cell key %q (want scheme/workload)", key)
	}
	r, err := s.SimContext(ctx, scheme, workload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// AdoptSchemes copies prev's built scheme cache into s when both suites
// share the identical array configuration and solver mode. Schemes are
// immutable after construction and depend only on (Cfg, solver) — their
// memo tables are concurrency-safe caches — so the copy is safe and
// skips rebuilding identical level tables. A standing worker fleet uses
// this to serve back-to-back sweeps that differ only in memory-system
// settings (seed, access budget) without paying scheme construction
// each time. Suites with a different array config or solver adopt
// nothing.
func (s *Suite) AdoptSchemes(prev *Suite) {
	if prev == nil || s == prev || s.Cfg != prev.Cfg || s.solver != prev.solver {
		return
	}
	prev.mu.Lock()
	copied := make(map[string]*core.Scheme, len(prev.schemes))
	for name, sc := range prev.schemes {
		copied[name] = sc
	}
	prev.mu.Unlock()
	s.mu.Lock()
	for name, sc := range copied {
		if _, ok := s.schemes[name]; !ok {
			s.schemes[name] = sc
		}
	}
	s.mu.Unlock()
}
