package experiments

import (
	"strings"
	"testing"

	"reramsim/internal/xpoint"
)

// sweepGmeans runs the UDRVR+PR vs Hard+Sys comparison for a list of
// variants and returns the gmean speedups (mirrors Suite.sweep without
// the formatting).
func sweepGmeans(t *testing.T, s *Suite, mods map[string]func(*xpoint.Config)) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for label, mod := range mods {
		sub, err := s.Variant(label, mod)
		if err != nil {
			t.Fatal(err)
		}
		// One representative write-heavy workload keeps the test fast;
		// the full sweep runs in cmd/figures and the bench harness.
		ref, err := sub.Sim("Hard+Sys", "mcf_m")
		if err != nil {
			t.Fatal(err)
		}
		up, err := sub.Sim("UDRVR+PR", "mcf_m")
		if err != nil {
			t.Fatal(err)
		}
		out[label] = up.Speedup(ref)
	}
	return out
}

// TestFig18Direction: UDRVR+PR's advantage grows with array size.
func TestFig18Direction(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep variants are expensive")
	}
	s := suite()
	g := sweepGmeans(t, s, map[string]func(*xpoint.Config){
		"t-256":  func(c *xpoint.Config) { c.Size = 256 },
		"t-1024": func(c *xpoint.Config) { c.Size = 1024 },
	})
	if g["t-1024"] <= g["t-256"] {
		t.Errorf("gain should grow with array size: 256 -> %.3f, 1024 -> %.3f", g["t-256"], g["t-1024"])
	}
}

// TestFig20Direction: UDRVR+PR's advantage shrinks as the selector gets
// more selective (less sneak to fight).
func TestFig20Direction(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep variants are expensive")
	}
	s := suite()
	g := sweepGmeans(t, s, map[string]func(*xpoint.Config){
		"t-kr500":  func(c *xpoint.Config) { c.Params.Kr = 500 },
		"t-kr2000": func(c *xpoint.Config) { c.Params.Kr = 2000 },
	})
	if g["t-kr500"] <= g["t-kr2000"] {
		t.Errorf("gain should shrink with Kr: 0.5K -> %.3f, 2K -> %.3f", g["t-kr500"], g["t-kr2000"])
	}
}

// TestExtensionsRenderContent: the beyond-paper experiments produce the
// figures of merit they promise.
func TestExtensionsRenderContent(t *testing.T) {
	s := suite()
	read, err := s.ExtReadMargin()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(read, "worst") {
		t.Errorf("read-margin output missing worst row:\n%s", read)
	}
	eq1, err := s.ExtEq1Kinetics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eq1, "exp(-") {
		t.Errorf("Eq.1 fit missing from output:\n%s", eq1)
	}
}

// TestPROptimalityHeadroom: Algorithm 1 must recover most of the
// partitioning headroom — its mean latency ratio to the optimal superset
// must beat the no-PR baseline's, and far-bit masks must be near-optimal.
func TestPROptimalityHeadroom(t *testing.T) {
	s := suite()
	arr, err := xpoint.New(s.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Far single-bit masks are PR's home turf: near-optimal there.
	prMean, err := prOptimalityStats(arr, s.Cfg, []uint8{1 << 7, 0b10000001})
	if err != nil {
		t.Fatal(err)
	}
	if prMean > 1.25 {
		t.Errorf("PR mean ratio to optimal on far masks = %.3f, want close to 1", prMean)
	}
	out, err := s.ExtPROptimality()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "masks where PR is optimal") {
		t.Errorf("missing optimality row:\n%s", out)
	}
}

// TestVariantKeepsDeviceConstants: sweeps must hold the calibrated Eq. 1
// constants fixed (the paper fits device constants once).
func TestVariantKeepsDeviceConstants(t *testing.T) {
	s := suite()
	v, err := s.Variant("t-const", func(c *xpoint.Config) { c.Size = 256 })
	if err != nil {
		t.Fatal(err)
	}
	if v.Cfg.Params.K != s.Cfg.Params.K || v.Cfg.Params.Trst0 != s.Cfg.Params.Trst0 {
		t.Error("variant recalibrated the device constants")
	}
}
