package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"reramsim/internal/core"
	"reramsim/internal/jobs"
	"reramsim/internal/memsys"
	"reramsim/internal/xpoint"
)

// gridDigestVersion versions the digest document below. Bump it when
// the document's shape (or the meaning of a field) changes, so journals
// written under the old interpretation are not replayed.
const gridDigestVersion = 1

// GridDigest derives the schema-versioned digest pinning a run journal
// to this suite's full sweep configuration: the calibrated array
// config, the memory-system config and the requested grid. Any change
// to any of them yields a different digest, so a -resume against the
// journal of a different sweep cold-starts instead of serving stale
// payloads.
func (s *Suite) GridDigest(pairs []SimPair) (string, error) {
	// Solver is empty for the exact reference, so exact digests are
	// byte-identical to those written before solver modes existed; a
	// non-exact mode prices (surrogate) or schedules (batched) writes
	// differently and must not replay an exact journal.
	var solver string
	if s.solver != core.SolverExact {
		solver = s.solver.String()
	}
	doc := struct {
		Version int
		Array   xpoint.Config
		Mem     memsys.Config // Heartbeat carries json:"-": hooks never enter the digest
		Solver  string        `json:",omitempty"`
		Pairs   []SimPair
	}{gridDigestVersion, s.Cfg, s.MemCfg, solver, pairs}
	blob, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("experiments: grid digest: %w", err)
	}
	return fmt.Sprintf("grid-v%d-%x", gridDigestVersion, sha256.Sum256(blob)), nil
}

// RunGrid executes the pairs through eng as journaled cells keyed
// "scheme/workload". Each cell's payload is its Result marshalled as
// JSON — float64 values survive the round trip bit-exactly, so a
// resumed payload renders byte-identically to a live simulation.
// Payloads resumed from the journal are decoded back into the suite's
// result cache, so the serial render loop behind PrimeSims reads them
// as ordinary cache hits. Duplicate pairs collapse onto one cell.
func (s *Suite) RunGrid(eng *jobs.Engine, pairs []SimPair) (*jobs.Report, error) {
	return s.runGrid(s.Context(), eng, pairs)
}

// RunGridContext is RunGrid under an explicit per-call context, for
// hosts that bound individual grid runs tighter than the suite's own
// lifetime — the reramd daemon threads each request's deadline through
// here, so one slow client's sweep times out without touching the
// suite-wide context shared by every other request.
func (s *Suite) RunGridContext(ctx context.Context, eng *jobs.Engine, pairs []SimPair) (*jobs.Report, error) {
	if ctx == nil {
		ctx = s.Context()
	}
	return s.runGrid(ctx, eng, pairs)
}

// runGrid is RunGrid under an explicit context (PrimeSims threads the
// sweep's span context through here so cells nest under it).
func (s *Suite) runGrid(ctx context.Context, eng *jobs.Engine, pairs []SimPair) (*jobs.Report, error) {
	cells := make([]jobs.Cell, 0, len(pairs))
	seen := make(map[string]bool, len(pairs))
	for _, p := range pairs {
		p := p
		key := p.Scheme + "/" + p.Workload
		if seen[key] {
			continue
		}
		seen[key] = true
		cells = append(cells, jobs.Cell{
			Key: key,
			// RunCell is the one producer of cell payload bytes — shared
			// with distributed workers, so records from either source are
			// byte-identical.
			Run: func(ctx context.Context) ([]byte, error) { return s.RunCell(ctx, key) },
		})
	}
	rep, err := eng.Run(ctx, cells)
	if rep != nil {
		s.seedResumed(rep)
	}
	return rep, err
}

// seedResumed installs journal-served payloads into the result cache
// (never overwriting a live result).
func (s *Suite) seedResumed(rep *jobs.Report) {
	for _, key := range rep.Resumed {
		var r memsys.Result
		if json.Unmarshal(rep.Done[key], &r) != nil {
			continue
		}
		s.mu.Lock()
		if _, ok := s.sims[key]; !ok {
			s.sims[key] = &r
		}
		s.mu.Unlock()
	}
}
