package experiments

import "fmt"

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string // e.g. "fig15"
	Title string
	Run   func(*Suite) (string, error)
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: device and array model", (*Suite).TableI},
		{"fig1e", "Fig. 1e: wire resistance per junction", (*Suite).Fig1e},
		{"fig4", "Fig. 4: baseline voltage-drop maps", (*Suite).Fig4},
		{"fig5b", "Fig. 5b: lifetime comparison", (*Suite).Fig5b},
		{"fig5c", "Fig. 5c: prior designs vs oracles", (*Suite).Fig5c},
		{"fig5d", "Fig. 5d: hardware overheads", (*Suite).Fig5d},
		{"fig6", "Fig. 6: over-RESET and DRVR maps", (*Suite).Fig6},
		{"fig7b", "Fig. 7b: DRVR on the left-most bit-line", (*Suite).Fig7b},
		{"fig9", "Fig. 9: RESET bit-count distribution", (*Suite).Fig9},
		{"fig11a", "Fig. 11a: multi-bit RESET sweet spot", (*Suite).Fig11a},
		{"fig11", "Fig. 11: DRVR+PR maps", (*Suite).Fig11},
		{"fig13", "Fig. 13: UDRVR+PR maps", (*Suite).Fig13},
		{"fig14", "Fig. 14: extra writes from PR and D-BL", (*Suite).Fig14},
		{"fig15", "Fig. 15: overall performance", (*Suite).Fig15},
		{"fig16", "Fig. 16: main-memory energy", (*Suite).Fig16},
		{"fig17", "Fig. 17: UDRVR-3.94 vs UDRVR+PR", (*Suite).Fig17},
		{"fig18", "Fig. 18: array-size sweep", (*Suite).Fig18},
		{"fig19", "Fig. 19: wire-resistance sweep", (*Suite).Fig19},
		{"fig20", "Fig. 20: ON/OFF-ratio sweep", (*Suite).Fig20},
		{"table3", "Table III: baseline configuration", (*Suite).TableIII},
		{"table4", "Table IV: simulated benchmarks", (*Suite).TableIV},
		{"ext-read", "Extension: read sense margin", (*Suite).ExtReadMargin},
		{"ext-eq1", "Extension: Eq. 1 from filament kinetics", (*Suite).ExtEq1Kinetics},
		{"ext-propt", "Extension: PR vs optimal partition choice", (*Suite).ExtPROptimality},
		{"ext-fault", "Extension: fault injection and write-verify retries", (*Suite).ExtFault},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
