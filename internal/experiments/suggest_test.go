package experiments

import "testing"

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"UDRVR+PR", "UDRVR-PR", 1},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSuggestSchemes(t *testing.T) {
	got := Suggest("udrvr+pr", SchemeNames())
	if len(got) == 0 || got[0] != "UDRVR+PR" {
		t.Fatalf("Suggest(udrvr+pr) = %v, want UDRVR+PR first", got)
	}
	got = Suggest("DRVR-PR", SchemeNames())
	if len(got) == 0 || got[0] != "DRVR+PR" {
		t.Fatalf("Suggest(DRVR-PR) = %v, want DRVR+PR first", got)
	}
	if got := Suggest("mcf_n", Workloads()); len(got) == 0 || got[0] != "mcf_m" {
		t.Fatalf("Suggest(mcf_n) = %v, want mcf_m first", got)
	}
	if got := Suggest("zzzzzzzzzzzzzzzzzzzz", SchemeNames()); len(got) != 0 {
		t.Fatalf("Suggest(garbage) = %v, want none", got)
	}
	if got := Suggest("base", SchemeNames()); len(got) > 3 {
		t.Fatalf("Suggest returned %d candidates, want <= 3", len(got))
	}
}
