package experiments

import (
	"fmt"
	"math"

	"reramsim/internal/stats"
	"reramsim/internal/write"
	"reramsim/internal/xpoint"
)

// ExtPROptimality evaluates how close Algorithm 1 comes to the optimal
// partition choice. For every possible 8-bit data RESET mask, the space
// of legal operations is the set of supersets (extra RESETs are always
// paired with compensating SETs, so any superset preserves data). The
// experiment solves all 255 operations once, then compares PR's choice
// with the latency-optimal superset per data mask.
func (s *Suite) ExtPROptimality() (string, error) {
	arr, err := xpoint.New(s.Cfg)
	if err != nil {
		return "", err
	}
	lat, err := maskLatencies(arr, s.Cfg)
	if err != nil {
		return "", err
	}

	var (
		ratios     []float64
		worstRatio float64
		worstMask  uint8
		optimalHit int
		masks      int
	)
	for m := 1; m < 256; m++ {
		mask := uint8(m)
		best := math.Inf(1)
		for sup := 1; sup < 256; sup++ {
			if uint8(sup)&mask == mask && lat[sup] < best {
				best = lat[sup]
			}
		}
		pr := write.PartitionReset(write.ArrayWrite{Reset: mask})
		prLat := lat[pr.Reset]
		ratio := prLat / best
		ratios = append(ratios, ratio)
		if ratio > worstRatio {
			worstRatio = ratio
			worstMask = mask
		}
		if ratio < 1.0001 {
			optimalHit++
		}
		masks++
	}

	t := stats.NewTable("Extension: partition RESET vs the optimal superset (all 255 data masks, worst position)",
		"metric", "value")
	t.AddF("mean PR/optimal latency", fmt.Sprintf("%.3f", stats.Mean(ratios)))
	t.AddF("worst PR/optimal latency", fmt.Sprintf("%.3f (mask %08b)", worstRatio, worstMask))
	t.AddF("masks where PR is optimal", fmt.Sprintf("%d / %d", optimalHit, masks))
	t.AddF("baseline (no PR) mean ratio", fmt.Sprintf("%.3f", noPRMeanRatio(lat)))
	return t.String(), nil
}

// maskLatencies solves the RESET latency of every non-empty 8-bit mask at
// the worst position (top row, far offset) under the nominal voltage.
func maskLatencies(arr *xpoint.Array, cfg xpoint.Config) ([]float64, error) {
	lat := make([]float64, 256)
	offset := cfg.MuxWidth() - 1
	for m := 1; m < 256; m++ {
		var cols []int
		for b := 0; b < 8; b++ {
			if m&(1<<b) != 0 {
				cols = append(cols, cfg.ColumnOfBit(b, offset))
			}
		}
		volts := make([]float64, len(cols))
		for i := range volts {
			volts[i] = cfg.Params.Vrst
		}
		res, err := arr.SimulateReset(xpoint.ResetOp{Row: cfg.Size - 1, Cols: cols, Volts: volts})
		if err != nil {
			return nil, fmt.Errorf("mask %08b: %w", m, err)
		}
		lat[m] = res.Latency
	}
	return lat, nil
}

// noPRMeanRatio computes the mean latency penalty of issuing the raw data
// mask instead of the optimal superset — the headroom PR exploits.
func noPRMeanRatio(lat []float64) float64 {
	var ratios []float64
	for m := 1; m < 256; m++ {
		mask := uint8(m)
		best := math.Inf(1)
		for sup := 1; sup < 256; sup++ {
			if uint8(sup)&mask == mask && lat[sup] < best {
				best = lat[sup]
			}
		}
		ratios = append(ratios, lat[m]/best)
	}
	return stats.Mean(ratios)
}

// prOptimalityStats exposes the key numbers for tests.
func prOptimalityStats(arr *xpoint.Array, cfg xpoint.Config, masks []uint8) (meanRatio float64, err error) {
	lat, err := maskLatencies(arr, cfg)
	if err != nil {
		return 0, err
	}
	var ratios []float64
	for _, mask := range masks {
		best := math.Inf(1)
		for sup := 1; sup < 256; sup++ {
			if uint8(sup)&mask == mask && lat[sup] < best {
				best = lat[sup]
			}
		}
		pr := write.PartitionReset(write.ArrayWrite{Reset: mask})
		ratios = append(ratios, lat[pr.Reset]/best)
	}
	return stats.Mean(ratios), nil
}
