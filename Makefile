GO ?= go

.PHONY: ci fmt vet build test race race-fault race-par vuln bench

ci: fmt vet build test race-fault race-par vuln

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault/write-verify/degradation path under the race detector: the
# injector, ECP patching and retirement bookkeeping are the newest
# concurrent-adjacent state, so CI runs just these packages with -race
# to keep the gate minutes-scale (make race covers everything).
race-fault:
	$(GO) test -race ./internal/fault/ ./internal/memsys/ ./internal/ecp/ ./internal/wear/

# The parallel-execution layer under the race detector: the worker pool,
# the singleflighted Suite caches and the sharded scheme memo are where
# fan-out contention lives (make race covers everything).
race-par:
	$(GO) test -race ./internal/par/ ./internal/experiments/ ./internal/core/

# govulncheck when installed; advisory otherwise so offline CI passes.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

bench:
	$(GO) test -bench=. -benchmem ./...
