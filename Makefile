GO ?= go

.PHONY: ci fmt vet build test race race-fault race-par test-resume test-telemetry test-serve test-dist test-chaos vuln staticcheck bench bench-guard bench-json

ci: fmt vet build test race-fault race-par test-resume test-telemetry test-serve test-dist test-chaos bench-guard vuln staticcheck

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault/write-verify/degradation path under the race detector: the
# injector, ECP patching and retirement bookkeeping are the newest
# concurrent-adjacent state, so CI runs just these packages with -race
# to keep the gate minutes-scale (make race covers everything).
race-fault:
	$(GO) test -race ./internal/fault/ ./internal/memsys/ ./internal/ecp/ ./internal/wear/

# The parallel-execution layer under the race detector: the worker pool,
# the singleflighted Suite caches, the sharded scheme memo and the pooled
# array solve contexts are where fan-out contention lives (make race
# covers everything).
race-par:
	$(GO) test -race ./internal/par/ ./internal/experiments/ ./internal/core/ ./internal/xpoint/

# The crash-safe sweep engine under the race detector: journal
# replay, resume byte-identity, panic isolation and watchdog state are
# the newest concurrent machinery — plus the CLI exit-code smoke tests
# (quarantined cell -> exit 3, SIGTERM -> exit 130 -> byte-identical
# resume).
test-resume:
	$(GO) test -race ./internal/jobs/ ./internal/atomicio/
	$(GO) test -race -run 'TestResume|TestPrimeSimsQuarantine|TestGridDigest' ./internal/experiments/
	$(GO) test -run 'TestQuarantineExitCodeSmoke|TestSigtermResumeByteIdentical' ./cmd/reramsim/

# The live telemetry plane under the race detector — the lock-free
# /metrics snapshot hammered against running sweeps and Capture windows,
# the span collector, the /progress export — plus the CLI e2e smoke
# (sweep with -obs-addr: mid-run scrapes, SSE progress advancing, and a
# Perfetto-loadable -trace-spans file on exit 0).
test-telemetry:
	$(GO) test -race ./internal/telemetry/ ./internal/obs/
	$(GO) test -race -run 'TestSweepSpan|TestProgress' ./internal/experiments/ ./internal/jobs/
	$(GO) test -run 'TestTelemetryE2ESmoke' ./cmd/reramsim/

# The service layer under the race detector: admission shedding
# (429/503 + Retry-After), dedup exactness (32 identical sweeps -> one
# execution), drain-under-load, panic isolation and the shared retry
# policy — plus the reramd daemon e2e (real suite over HTTP, SIGTERM
# drain with on-disk checkpoints, exit 0).
test-serve:
	$(GO) test -race ./internal/serve/ ./internal/retry/
	$(GO) test -race -run 'TestDaemon' ./cmd/reramd/

# The distributed sweep layer under the race detector: the lease state
# machine, the coordinator's long-poll/janitor/merge paths and the
# worker loop (including adversarial segment-return orders and
# simulated worker loss) — plus the CLI e2e (coordinator + 4 worker
# processes byte-identical to a single-process run, and SIGKILLing a
# worker mid-grid with lease-expiry recovery).
test-dist:
	$(GO) test -race ./internal/dist/
	$(GO) test -run 'TestDist' ./cmd/reramsim/

# The chaos-hardening layer under the race detector: the seeded
# fault-injection engine, the integrity/audit/health-score coordinator
# paths (corrupt segments, digest mismatches, divergent workers), the
# disk-full journal injection, and the in-process fleet e2e (coordinator
# + 4 workers under a seeded fault plan must be byte-identical to a
# clean run) — plus the CLI chaos e2e (distributed sweep under -chaos
# with a segment-corrupting worker, and -audit-fraction=1.0 catching a
# divergent worker with exit 3). Every fault plan is seeded, so failures
# reproduce.
test-chaos:
	$(GO) test -race ./internal/chaos/ ./internal/atomicio/ ./internal/retry/
	$(GO) test -race -run 'TestComplete|TestDuplicateCompletion|TestAudit|TestHealth|TestLease|TestWorkerShips|TestMangled' ./internal/dist/
	$(GO) test -run 'TestChaos' ./cmd/reramsim/

# govulncheck when installed; advisory otherwise so offline CI passes.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

# staticcheck when installed; advisory otherwise so offline CI passes.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi

bench:
	$(GO) test -bench=. -benchmem ./...

# The allocation guards: steady-state SimulateResetInto, disabled spans
# and the disabled chaos plane must all stay at 0 allocs/op (the
# benchmarks themselves fail otherwise), run briefly as part of ci.
bench-guard:
	$(GO) test -run xxx -bench 'BenchmarkResetOpSteadyState|BenchmarkSpanDisabled|BenchmarkChaosDisabled' -benchtime 100x -benchmem .

# Machine-readable micro-benchmark snapshot for the perf trajectory:
# the PR4 solver/cost baselines (steady-state ResetOp regressions show
# up against BENCH_PR4.json), the PR6 telemetry overheads (span on/off,
# /metrics scrape render), the PR7 served-request latency (full HTTP
# round trip through admission + deadline setup), the PR8 solver modes
# (per-op vs SoA-batched solves, cold-path pricing), the PR9 sweep
# backends (serial vs parallel-4/8 vs a standing distributed-4 fleet —
# the fleet must beat the serial cold-start wall clock), and the PR10
# chaos plane (the disabled path must stay at 0 allocs/op).
bench-json:
	{ $(GO) test -run xxx -bench 'BenchmarkResetOp1Bit|BenchmarkResetOp4Bit|BenchmarkResetOpSteadyState|BenchmarkCostWriteMemoized|BenchmarkSweepParallel|BenchmarkSpanDisabled|BenchmarkSpanEnabled|BenchmarkMetricsScrape|BenchmarkResetBatchSolver|BenchmarkChaosDisabled' \
		-benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkServedSolve' -benchtime 500x -benchmem ./internal/serve/ ; \
	  $(GO) test -run xxx -bench 'BenchmarkSolverModesCold' -benchtime 10x -benchmem ./internal/core/ ; } \
		| $(GO) run ./cmd/bench2json > BENCH_PR10.json
	@echo "wrote BENCH_PR10.json"
