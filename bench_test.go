package reramsim

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one Benchmark per experiment, printing the rows the paper
// reports on first run) plus ablation and micro benchmarks for the design
// choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"reramsim/internal/atomicio"
	"reramsim/internal/chaos"
	"reramsim/internal/dist"
	"reramsim/internal/experiments"
	"reramsim/internal/fault"
	"reramsim/internal/jobs"
	"reramsim/internal/obs"
	"reramsim/internal/par"
	"reramsim/internal/trace"
	"reramsim/internal/write"
)

// benchAccesses keeps each simulation point sub-second so the full bench
// suite stays minutes-scale. cmd/figures uses longer runs.
const benchAccesses = 1200

var benchSuite = sync.OnceValue(func() *experiments.Suite {
	s, err := experiments.NewSuite(benchAccesses)
	if err != nil {
		panic(err)
	}
	return s
})

var printedExperiments sync.Map

// benchExperiment runs one registered experiment per iteration; the first
// run prints the regenerated rows (the deliverable of the harness).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printedExperiments.LoadOrStore(id, true); !done {
			fmt.Printf("\n%s\n", out)
		}
	}
}

// One benchmark per paper table and figure.

func BenchmarkTableI(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFig1e(b *testing.B)    { benchExperiment(b, "fig1e") }
func BenchmarkFig4(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig5b(b *testing.B)    { benchExperiment(b, "fig5b") }
func BenchmarkFig5c(b *testing.B)    { benchExperiment(b, "fig5c") }
func BenchmarkFig5d(b *testing.B)    { benchExperiment(b, "fig5d") }
func BenchmarkFig6(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7b(b *testing.B)    { benchExperiment(b, "fig7b") }
func BenchmarkFig9(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig11a(b *testing.B)   { benchExperiment(b, "fig11a") }
func BenchmarkFig11(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig13(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)    { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)    { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)    { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)    { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)    { benchExperiment(b, "fig20") }
func BenchmarkTableIII(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTableIV(b *testing.B)  { benchExperiment(b, "table4") }

// Beyond-paper extension experiments.

func BenchmarkExtReadMargin(b *testing.B)   { benchExperiment(b, "ext-read") }
func BenchmarkExtEq1Kinetics(b *testing.B)  { benchExperiment(b, "ext-eq1") }
func BenchmarkExtPROptimality(b *testing.B) { benchExperiment(b, "ext-propt") }
func BenchmarkExtFault(b *testing.B)        { benchExperiment(b, "ext-fault") }

// BenchmarkSweepParallel tracks end-to-end sweep wall clock across the
// execution backends: the same scheme x workload grid run serial
// (-jobs=1), through the in-process worker pool at 4 and 8 jobs, and
// fanned to a standing 4-worker distributed fleet. Each in-process
// iteration builds a fresh suite (calibration + schemes + sims), which
// is what one cold CLI invocation pays; the distributed variant is the
// standing-fleet shape instead — coordinator and workers stay up across
// iterations, each iteration registers a new sweep (fresh seed, fresh
// engine) and the fleet amortizes calibration, scheme construction and
// the RESET-cost memo across sweeps via Suite.AdoptSchemes. On a
// multi-core runner parallel-N also wins on CPU fan-out; on a single
// core the distributed win is purely the warm-state amortization, which
// is the honest story for back-to-back daemon sweeps.
func BenchmarkSweepParallel(b *testing.B) {
	schemes := []string{"Base", "Hard+Sys", "UDRVR+PR"}
	workloads := []string{"ast_m", "mcf_m", "mil_m", "zeu_m"}
	var pairs []experiments.SimPair
	for _, sc := range schemes {
		for _, w := range workloads {
			pairs = append(pairs, experiments.SimPair{Scheme: sc, Workload: w})
		}
	}
	run := func(b *testing.B, jobs int) {
		par.SetJobs(jobs)
		defer par.SetJobs(0)
		for i := 0; i < b.N; i++ {
			s, err := experiments.NewSuite(benchAccesses)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.PrimeSims(pairs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel-4", func(b *testing.B) { run(b, 4) })
	b.Run("parallel-8", func(b *testing.B) { run(b, 8) })
	b.Run("distributed-4", func(b *testing.B) { benchDistributedSweep(b, pairs, 4) })
}

// benchDistributedSweep drives one sweep per iteration through a
// standing coordinator + worker fleet, all in-process over loopback
// HTTP. Workers share one runner factory so every rebuilt worker suite
// adopts the previous one's schemes — the amortization a long-lived
// fleet provides. The warm-up sweep (runner build, scheme construction,
// memo priming) runs before the timer; timed iterations vary the
// workload seed so each registers a genuinely new sweep under a new
// digest.
func benchDistributedSweep(b *testing.B, pairs []experiments.SimPair, workers int) {
	base, err := experiments.NewSuite(benchAccesses)
	if err != nil {
		b.Fatal(err)
	}
	coord, err := dist.StartCoordinator(dist.CoordinatorOptions{
		Addr:       "localhost:0",
		Persistent: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var fleet sync.WaitGroup
	factory := benchDistRunner()
	for i := 0; i < workers; i++ {
		fleet.Add(1)
		go func(id int) {
			defer fleet.Done()
			_ = dist.RunWorker(ctx, dist.WorkerOptions{
				Join:      coord.Addr(),
				ID:        fmt.Sprintf("bench-w%d", id),
				Max:       3,
				Poll:      2 * time.Millisecond,
				NewRunner: factory,
			})
		}(i)
	}
	defer func() {
		b.StopTimer()
		cancel()
		coord.Close()
		fleet.Wait()
	}()

	distPairs := make([]dist.Pair, len(pairs))
	for i, p := range pairs {
		distPairs[i] = dist.Pair{Scheme: p.Scheme, Workload: p.Workload}
	}
	sweep := func(seed int64) error {
		mem := base.MemCfg
		mem.Seed = seed
		ws, err := experiments.NewWorkerSuite(base.Cfg, mem, "")
		if err != nil {
			return err
		}
		digest, err := ws.GridDigest(pairs)
		if err != nil {
			return err
		}
		eng, err := jobs.Open(jobs.Options{})
		if err != nil {
			return err
		}
		_, err = coord.RunSweep(ctx, dist.GridSpec{
			Array:  base.Cfg,
			Mem:    mem,
			Solver: ws.Solver().String(),
			Digest: digest,
			Pairs:  distPairs,
		}, eng)
		return err
	}
	if err := sweep(1 << 32); err != nil { // warm the fleet outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sweep(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDistRunner mirrors the CLI's worker runner factory: rebuild the
// suite from the wire config without recalibrating, and adopt the
// previous suite's scheme cache so back-to-back sweeps skip scheme
// construction and keep their RESET-cost memos warm.
func benchDistRunner() func(dist.GridSpec) (dist.CellFunc, error) {
	var mu sync.Mutex
	var prev *experiments.Suite
	return func(spec dist.GridSpec) (dist.CellFunc, error) {
		suite, err := experiments.NewWorkerSuite(spec.Array, spec.Mem, spec.Solver)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		suite.AdoptSchemes(prev)
		prev = suite
		mu.Unlock()
		return suite.RunCell, nil
	}
}

// --- Micro benchmarks -------------------------------------------------

func benchArray(b *testing.B) *Array {
	b.Helper()
	arr, err := NewArray(CalibratedConfig())
	if err != nil {
		b.Fatal(err)
	}
	return arr
}

// BenchmarkResetOp1Bit measures one worst-case 1-bit array solve.
func BenchmarkResetOp1Bit(b *testing.B) {
	arr := benchArray(b)
	op := ResetOp{Row: 511, Cols: []int{511}, Volts: []float64{3.0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arr.SimulateReset(op); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResetOp4Bit measures a PR-style 4-bit partitioned solve.
func BenchmarkResetOp4Bit(b *testing.B) {
	arr := benchArray(b)
	op := ResetOp{
		Row:   511,
		Cols:  []int{127, 255, 383, 511},
		Volts: []float64{3, 3, 3, 3},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arr.SimulateReset(op); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResetOpSteadyState guards the zero-allocation solver hot
// path: once the Array's context pool is warm, SimulateResetInto with a
// caller-owned result must not allocate at all — the ladders, scratch
// slices and result slices are all reused. The guard fails the benchmark
// (and make ci) if an allocation sneaks back in.
func BenchmarkResetOpSteadyState(b *testing.B) {
	arr := benchArray(b)
	op := ResetOp{Row: 511, Cols: []int{511}, Volts: []float64{3.0}}
	var res ResetResult
	if err := arr.SimulateResetInto(op, &res); err != nil { // warm the pool
		b.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := arr.SimulateResetInto(op, &res); err != nil {
			b.Fatal(err)
		}
	}); avg > 0 {
		b.Fatalf("steady-state SimulateResetInto allocates %.1f times/op, want 0", avg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := arr.SimulateResetInto(op, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResetBatchSolver compares one gather of eight independent
// 1-bit solves run per-op against the SoA batch kernel. The batch result
// is bit-identical (xpoint's differential tests enforce it); the win is
// the shared node-major sweep over all lanes.
func BenchmarkResetBatchSolver(b *testing.B) {
	arr := benchArray(b)
	var ops []ResetOp
	for i := 0; i < 8; i++ {
		ops = append(ops, ResetOp{
			Row:   64*i + 63,
			Cols:  []int{64*i + 32},
			Volts: []float64{3.0},
		})
	}
	out := make([]ResetResult, len(ops))
	b.Run("perop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range ops {
				if err := arr.SimulateResetInto(ops[j], &out[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := arr.SimulateResetBatch(ops, out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCostWriteMemoized measures the steady-state (table-hit) cost
// of pricing a line write — the hot path of the system simulator.
func BenchmarkCostWriteMemoized(b *testing.B) {
	s, err := UDRVRPR(CalibratedConfig())
	if err != nil {
		b.Fatal(err)
	}
	var lw write.LineWrite
	for i := range lw.Arrays {
		lw.Arrays[i] = write.ArrayWrite{Reset: 1 << uint(i%8), Set: 1}
	}
	if _, err := s.CostWrite(300, 40, lw); err != nil { // warm the table
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.CostWrite(300, 40, lw); err != nil {
			b.Fatal(err)
		}
	}
}

// obsBenchScheme builds the instrumented line-write hot path shared by
// the observability benchmarks: a memoized CostWrite wrapped in a timing
// scope, exactly as memsys.submitWrite runs it.
func obsBenchScheme(b *testing.B) (*Scheme, write.LineWrite) {
	b.Helper()
	s, err := UDRVRPR(CalibratedConfig())
	if err != nil {
		b.Fatal(err)
	}
	var lw write.LineWrite
	for i := range lw.Arrays {
		lw.Arrays[i] = write.ArrayWrite{Reset: 1 << uint(i%8), Set: 1}
	}
	if _, err := s.CostWrite(300, 40, lw); err != nil { // warm the table
		b.Fatal(err)
	}
	return s, lw
}

// BenchmarkObsDisabled guards the observability off switch: with the
// registry disabled the instrumented line-write hot path must add zero
// allocations per op (each metric touch is a single atomic load).
func BenchmarkObsDisabled(b *testing.B) {
	s, lw := obsBenchScheme(b)
	obs.SetEnabled(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stop := obs.Time("memsys.line_write")
		if _, err := s.CostWrite(300, 40, lw); err != nil {
			b.Fatal(err)
		}
		stop()
	}
}

// BenchmarkObsEnabled is the companion measurement with metrics on (no
// trace sink), quantifying the cost of live counters and histograms.
func BenchmarkObsEnabled(b *testing.B) {
	s, lw := obsBenchScheme(b)
	obs.SetEnabled(true)
	defer func() {
		obs.SetEnabled(false)
		obs.Default().ResetValues()
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stop := obs.Time("memsys.line_write")
		if _, err := s.CostWrite(300, 40, lw); err != nil {
			b.Fatal(err)
		}
		stop()
	}
}

// BenchmarkSpanDisabled guards the span off switch: with no sink
// installed, StartSpan and SpanScope on an instrumented hot path must
// be a single atomic load each — zero allocations per op. The guard
// fails the benchmark (and make ci) if the disabled path regresses.
func BenchmarkSpanDisabled(b *testing.B) {
	obs.SetSpanSink(nil)
	ctx := context.Background()
	if avg := testing.AllocsPerRun(100, func() {
		sctx, stop := obs.StartSpan(ctx, "bench.span")
		obs.SpanScope("bench.scope")()
		stop()
		_ = sctx
	}); avg > 0 {
		b.Fatalf("disabled spans allocate %.1f times/op, want 0", avg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stop := obs.StartSpan(ctx, "bench.span")
		obs.SpanScope("bench.scope")()
		stop()
	}
}

// BenchmarkChaosDisabled guards the fault-injection off switch: with no
// plan installed, the three hooks a production run crosses — the
// transport wrap in every worker HTTP client, the Active gate, and the
// atomicio stage-fault check on every journal write — must be a single
// atomic load each, zero allocations per op. The guard fails the
// benchmark (and make ci) if the disabled path regresses.
func BenchmarkChaosDisabled(b *testing.B) {
	chaos.Uninstall()
	if chaos.Active() || atomicio.HookEnabled() {
		b.Fatal("chaos plan or atomicio hook unexpectedly installed")
	}
	if avg := testing.AllocsPerRun(100, func() {
		_ = chaos.Active()
		_ = chaos.WrapTransport(nil)
		_ = atomicio.HookEnabled()
	}); avg > 0 {
		b.Fatalf("disabled chaos path allocates %.1f times/op, want 0", avg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = chaos.Active()
		_ = chaos.WrapTransport(nil)
		_ = atomicio.HookEnabled()
	}
}

// BenchmarkSpanEnabled is the companion measurement with a discarding
// sink installed, quantifying the full span cost (goroutine-id lookup,
// node allocation, stack upkeep, emission).
func BenchmarkSpanEnabled(b *testing.B) {
	obs.SetSpanSink(obs.NopSpanSink{})
	defer obs.SetSpanSink(nil)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sctx, stop := obs.StartSpan(ctx, "bench.span")
		obs.SpanScope("bench.scope")()
		stop()
		_ = sctx
	}
}

// BenchmarkMetricsScrape measures one /metrics render — the lock-free
// registry snapshot plus the Prometheus text encoding — over a registry
// populated like a mid-sweep scrape (counters, gauges and histograms).
func BenchmarkMetricsScrape(b *testing.B) {
	obs.SetEnabled(true)
	defer func() {
		obs.SetEnabled(false)
		obs.Default().ResetValues()
	}()
	for i := 0; i < 32; i++ {
		obs.C(fmt.Sprintf("bench.scrape.counter_%d", i)).Add(uint64(i))
		obs.G(fmt.Sprintf("bench.scrape.gauge_%d", i)).Set(float64(i))
	}
	h := obs.H("bench.scrape.hist", obs.LatencyBoundsNS())
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i * 1000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := obs.Default().Snapshot().WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultDisabled guards the fault-injection off switch: with the
// "none" profile the injector is nil and every fault query on the
// line-write hot path must stay a branch — zero allocations per op, no
// overhead beyond the instrumented CostWrite itself.
func BenchmarkFaultDisabled(b *testing.B) {
	s, lw := obsBenchScheme(b)
	var inj *fault.Injector // the disabled injector is nil
	obs.SetEnabled(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if inj.Enabled() {
			b.Fatal("nil injector reported enabled")
		}
		c, err := s.CostWrite(300, 40, lw)
		if err != nil {
			b.Fatal(err)
		}
		if dv := inj.Undershoot(0); inj.AttemptFails(0, c.MinMargin-dv, dv > 0) {
			b.Fatal("nil injector failed an attempt")
		}
		if _, stuck := inj.StuckAfterWrite(0, c.Resets); stuck {
			b.Fatal("nil injector stuck a cell")
		}
	}
}

// BenchmarkFlipNWrite measures the data-path reduction of one 64 B write.
func BenchmarkFlipNWrite(b *testing.B) {
	old := make([]byte, 64)
	data := make([]byte, 64)
	for i := range old {
		old[i] = byte(i * 37)
		data[i] = byte(i*37) ^ byte(i%5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := write.FlipNWrite(old, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGen measures workload generation throughput.
func BenchmarkTraceGen(b *testing.B) {
	bench, err := trace.ByName("mcf_m")
	if err != nil {
		b.Fatal(err)
	}
	g, err := trace.NewGenerator(bench, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkSimPoint measures one full system-simulation point.
func BenchmarkSimPoint(b *testing.B) {
	s, err := UDRVRPR(CalibratedConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := Simulate(s, "mcf_m", 1000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IPC, "IPC")
	}
}

// --- Ablation benchmarks (DESIGN.md §6) --------------------------------

// BenchmarkAblationDRVRLevels sweeps the DRVR section count: more levels
// tighten the per-section voltage spread at the cost of a bigger VRA.
func BenchmarkAblationDRVRLevels(b *testing.B) {
	cfg := CalibratedConfig()
	for _, sections := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("sections=%d", sections), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := NewScheme(fmt.Sprintf("drvr-%d", sections), SchemeOptions{
					Array: cfg, DRVR: true, DRVRSections: sections,
				})
				if err != nil {
					b.Fatal(err)
				}
				wc, err := s.WorstWriteCost()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(wc.ResetLatency*1e9, "worst-rst-ns")
				b.ReportMetric(s.Levels().Max(), "max-level-V")
			}
		})
	}
}

// BenchmarkAblationPRGroups sweeps Algorithm 1's group width: 1-bit
// groups over-partition (D-BL-like current), 4-bit groups under-partition.
func BenchmarkAblationPRGroups(b *testing.B) {
	arr := benchArray(b)
	cfg := arr.Config()
	for _, group := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("group=%d", group), func(b *testing.B) {
			aw := write.PartitionResetGroups(write.ArrayWrite{Reset: 1 << 7}, group)
			var cols []int
			var volts []float64
			for bit := 0; bit < 8; bit++ {
				if aw.Reset&(1<<bit) != 0 {
					cols = append(cols, cfg.ColumnOfBit(bit, 63))
					volts = append(volts, 3.0)
				}
			}
			op := ResetOp{Row: 511, Cols: cols, Volts: volts}
			for i := 0; i < b.N; i++ {
				res, err := arr.SimulateReset(op)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Latency*1e9, "op-rst-ns")
				b.ReportMetric(float64(len(cols)), "concurrent-resets")
			}
		})
	}
}

// BenchmarkAblationLUT compares the canonicalised RESET cost table
// against exact per-mask solving: accuracy vs table size and speed.
func BenchmarkAblationLUT(b *testing.B) {
	cfg := CalibratedConfig()
	for _, exact := range []bool{false, true} {
		b.Run(fmt.Sprintf("exact=%v", exact), func(b *testing.B) {
			s, err := NewScheme("lut", SchemeOptions{Array: cfg, DRVR: true, UDRVR: true, PR: true, ExactMasks: exact})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := Simulate(s, "ast_m", 600)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.IPC, "IPC")
			}
			b.ReportMetric(float64(s.MemoSize()), "table-entries")
		})
	}
}

// BenchmarkAblationSolver compares the fast ladder model against the full
// 2-D nonlinear solver on the largest array the latter handles quickly.
func BenchmarkAblationSolver(b *testing.B) {
	cfg := CalibratedConfig()
	cfg.Size = 64
	b.Run("ladder", func(b *testing.B) {
		arr, err := NewArray(cfg)
		if err != nil {
			b.Fatal(err)
		}
		op := ResetOp{Row: 63, Cols: []int{63}, Volts: []float64{3.0}}
		for i := 0; i < b.N; i++ {
			res, err := arr.SimulateReset(op)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Veff[0], "worst-veff-V")
		}
	})
	b.Run("full2d", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			veff, err := fullSolverWorstCase(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(veff, "worst-veff-V")
		}
	})
}

// BenchmarkAblationFNW quantifies what Flip-N-Write buys: cells written
// per line with and without it.
func BenchmarkAblationFNW(b *testing.B) {
	bench, err := trace.ByName("zeu_m")
	if err != nil {
		b.Fatal(err)
	}
	for _, fnw := range []bool{true, false} {
		b.Run(fmt.Sprintf("fnw=%v", fnw), func(b *testing.B) {
			g, err := trace.NewGenerator(bench, 1)
			if err != nil {
				b.Fatal(err)
			}
			var cells, writes float64
			for i := 0; i < b.N; i++ {
				a := g.Next()
				if a.Kind != trace.Write {
					continue
				}
				var lw write.LineWrite
				if fnw {
					lw, _, err = write.FlipNWrite(a.Old[:], a.New[:])
				} else {
					lw, err = write.RawWrite(a.Old[:], a.New[:])
				}
				if err != nil {
					b.Fatal(err)
				}
				r, s := lw.Totals()
				cells += float64(r + s)
				writes++
			}
			if writes > 0 {
				b.ReportMetric(cells/writes, "cells/write")
			}
		})
	}
}

// BenchmarkAblationCellModel compares the default compliance-limited cell
// against the ohmic-plus-selector composite in the 1-bit worst case: the
// choice drives how much IR drop the model predicts (DESIGN.md §3).
func BenchmarkAblationCellModel(b *testing.B) {
	base := CalibratedConfig()
	base.Size = 128
	b.Run("saturating", func(b *testing.B) {
		arr, err := NewArray(base)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			res, err := arr.SimulateReset(ResetOp{Row: 127, Cols: []int{127}, Volts: []float64{3.0}})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Veff[0], "worst-veff-V")
		}
	})
	b.Run("composite", func(b *testing.B) {
		veff, err := compositeWorstCase(base)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			b.ReportMetric(veff, "worst-veff-V")
		}
	})
}

// fullSolverWorstCase and compositeWorstCase are implemented in
// helpers_test.go (they reach below the facade into the reference
// solver and the alternative device model).

// BenchmarkAblationWritePolicy compares the paper's read-first write
// scheduling (writes drain only when no read is pending, bursting when
// the queue fills) against eagerly issuing writes whenever a bank is
// free. With many banks the eager policy can win on read-heavy loads:
// read-first lets writes pile up until a burst blocks every read at
// once, while eager draining spreads the occupancy across idle banks.
func BenchmarkAblationWritePolicy(b *testing.B) {
	s, err := Baseline(CalibratedConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, eager := range []bool{false, true} {
		b.Run(fmt.Sprintf("eager=%v", eager), func(b *testing.B) {
			bench, err := BenchmarkByName("tig_m")
			if err != nil {
				b.Fatal(err)
			}
			cfg := DefaultSimConfig()
			cfg.AccessesPerCore = 1200
			cfg.EagerWrites = eager
			for i := 0; i < b.N; i++ {
				res, err := SimulateConfig(s, bench, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.IPC, "IPC")
				b.ReportMetric(res.AvgReadLatency*1e9, "read-ns")
			}
		})
	}
}
