package reramsim

import (
	"math"
	"testing"
)

func TestCalibratedConfig(t *testing.T) {
	cfg := CalibratedConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Params.K <= 0 {
		t.Error("calibration left Eq.1 slope unset")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	cfg := CalibratedConfig()
	up, err := UDRVRPR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Baseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Simulate(up, "mcf_m", 800)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := Simulate(base, "mcf_m", 800)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Speedup(r0) <= 1.5 {
		t.Errorf("UDRVR+PR speedup over baseline = %.2f, want substantial", r1.Speedup(r0))
	}
	years, err := Lifetime(up)
	if err != nil {
		t.Fatal(err)
	}
	if years < 10 {
		t.Errorf("UDRVR+PR lifetime = %.1f years, want > 10", years)
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if got := len(Benchmarks()); got != 11 {
		t.Errorf("Benchmarks() returned %d, want 11", got)
	}
	if _, err := BenchmarkByName("lbm_m"); err != nil {
		t.Error(err)
	}
	if _, err := BenchmarkByName("zzz"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFacadeArray(t *testing.T) {
	arr, err := NewArray(CalibratedConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := arr.SimulateReset(ResetOp{Row: 0, Cols: []int{0}, Volts: []float64{3.0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Veff[0] < 2.8 {
		t.Errorf("no-drop corner Veff = %.3f, want near 3.0", res.Veff[0])
	}
}

// TestLadderMatchesReferenceViaFacade re-runs the cross-solver validation
// through the public API on a small array.
func TestLadderMatchesReferenceViaFacade(t *testing.T) {
	cfg := calibratedSmall(64)
	arr, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := arr.SimulateReset(ResetOp{Row: 63, Cols: []int{63}, Volts: []float64{3.0}})
	if err != nil {
		t.Fatal(err)
	}
	full, err := fullSolverWorstCase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(fast.Veff[0] - full); diff > 5e-3 {
		t.Errorf("fast %.4f vs full %.4f (diff %.1f mV)", fast.Veff[0], full, diff*1e3)
	}
}

func TestOracleFacade(t *testing.T) {
	cfg := CalibratedConfig()
	ora, err := Oracle(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := ora.WorstWriteCost()
	if err != nil {
		t.Fatal(err)
	}
	if wc.ResetLatency > 200e-9 {
		t.Errorf("ora-64 worst RESET = %.0f ns, should be fast", wc.ResetLatency*1e9)
	}
}

func TestNewSuiteFacade(t *testing.T) {
	s, err := NewSuite(500)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Error("empty Table IV")
	}
}
