// Command bench2json converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark trajectories can
// be archived and diffed across commits (see the Makefile's bench-json
// target).
//
// Usage:
//
//	go test -run xxx -bench 'ResetOp' -benchmem . | bench2json > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Standard units get dedicated
// fields; b.ReportMetric extras land in Metrics keyed by their unit.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type Document struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Package string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	doc := Document{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8   123   456.7 ns/op   12 B/op   3 allocs/op   1.5 extra
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
