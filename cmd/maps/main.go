// Command maps exports the position-dependence surfaces (effective Vrst,
// RESET latency, endurance — the paper's Figs. 4/6/11/13) as CSV for
// external plotting.
//
// Usage:
//
//	maps -scheme UDRVR+PR -metric latency -blocks 16 > udrvrpr_latency.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"reramsim/internal/core"
	"reramsim/internal/experiments"
	"reramsim/internal/solvecache"
	"reramsim/internal/xpoint"
)

func main() {
	var (
		scheme = flag.String("scheme", "Base", "scheme name (see cmd/reramsim -list)")
		metric = flag.String("metric", "veff", "veff | latency | endurance")
		blocks = flag.Int("blocks", 8, "sampling blocks per axis (must divide the array size)")
		list   = flag.Bool("list", false, "list schemes and exit")

		solveCacheDir = flag.String("solve-cache", "", "directory for the persistent solve cache (default: disabled); results are identical with or without it")
	)
	flag.Parse()
	if *solveCacheDir != "" {
		sc, err := solvecache.Open(*solveCacheDir)
		if err != nil {
			fail(fmt.Errorf("-solve-cache: %w", err))
		}
		core.SetSolveCache(sc)
	}

	if *list {
		fmt.Println(strings.Join(experiments.SchemeNames(), "\n"))
		return
	}

	suite, err := experiments.NewSuite(0)
	if err != nil {
		fail(err)
	}
	sc, err := suite.Scheme(*scheme)
	if err != nil {
		fail(err)
	}

	var m *xpoint.Map
	switch *metric {
	case "veff":
		m, err = sc.EffectiveVrstMap(*blocks)
	case "latency":
		m, err = sc.LatencyMap(*blocks)
	case "endurance":
		m, err = sc.EnduranceMap(*blocks)
	default:
		fail(fmt.Errorf("unknown metric %q (veff | latency | endurance)", *metric))
	}
	if err != nil {
		fail(err)
	}

	w := csv.NewWriter(os.Stdout)
	header := []string{"row_block"}
	for j := 0; j < m.Blocks; j++ {
		header = append(header, fmt.Sprintf("col%d", j))
	}
	if err := w.Write(header); err != nil {
		fail(err)
	}
	for i, row := range m.Values {
		rec := []string{strconv.Itoa(i)}
		for _, v := range row {
			if math.IsInf(v, 1) {
				rec = append(rec, "inf")
			} else {
				rec = append(rec, strconv.FormatFloat(v, 'g', 8, 64))
			}
		}
		if err := w.Write(rec); err != nil {
			fail(err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "maps:", err)
	os.Exit(1)
}
