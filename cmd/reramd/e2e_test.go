package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles cmd/reramd once per test.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "reramd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// syncBuffer collects the daemon's stderr safely across goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

type daemon struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	stderr *syncBuffer
}

var servingRe = regexp.MustCompile(`serving on http://(\S+)`)

// startDaemon launches the binary on a kernel-assigned port, waits for
// /readyz, and returns the live endpoint.
func startDaemon(t *testing.T, bin string, env []string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), env...)
	errBuf := &syncBuffer{}
	cmd.Stderr = errBuf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	d := &daemon{cmd: cmd, stderr: errBuf}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	deadline := time.Now().Add(60 * time.Second)
	for d.base == "" {
		if m := servingRe.FindStringSubmatch(errBuf.String()); m != nil {
			d.base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr:\n%s", errBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		resp, err := http.Get(d.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready; stderr:\n%s", errBuf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (d *daemon) post(t *testing.T, path, client string, body any) (*http.Response, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, d.base+path, bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, out
}

func (d *daemon) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, out
}

// metricValue extracts one metric's value from /metrics text.
func metricValue(t *testing.T, text, name string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil {
			return v, true
		}
	}
	return 0, false
}

// TestDaemonDedupE2E: 32 concurrent identical sweeps against the real
// suite must execute exactly one grid — asserted both registry-exact
// (one job id, 31 responses marked deduped) and via the serve.deduped /
// serve.jobs_run metric series.
func TestDaemonDedupE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the daemon")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin, nil, "-accesses", "2000", "-jobs", "2")

	req := map[string]any{
		"schemes":   []string{"Base", "UDRVR+PR"},
		"workloads": []string{"mcf_m", "mil_m"},
		"wait":      true,
	}
	const n = 32
	type result struct {
		JobID   string `json:"job_id"`
		State   string `json:"state"`
		Deduped bool   `json:"deduped"`
	}
	results := make([]result, n)
	errs := make(chan error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, body := d.post(t, "/v1/sweep", fmt.Sprintf("client-%d", i), req)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d (%s)", i, resp.StatusCode, body)
				return
			}
			if err := json.Unmarshal(body, &results[i]); err != nil {
				errs <- fmt.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	deduped := 0
	for i, r := range results {
		if r.State != "done" {
			t.Fatalf("request %d: state %q, want done", i, r.State)
		}
		if r.JobID != results[0].JobID {
			t.Fatalf("requests split across jobs: %q vs %q", r.JobID, results[0].JobID)
		}
		if r.Deduped {
			deduped++
		}
	}
	if deduped != n-1 {
		t.Fatalf("%d responses deduped, want exactly %d", deduped, n-1)
	}

	_, metrics := d.get(t, "/metrics")
	if v, ok := metricValue(t, string(metrics), "serve_jobs_run"); !ok || v != 1 {
		t.Fatalf("serve_jobs_run = %v (found=%v), want exactly 1", v, ok)
	}
	if v, ok := metricValue(t, string(metrics), "serve_deduped"); !ok || v != n-1 {
		t.Fatalf("serve_deduped = %v (found=%v), want %d", v, ok, n-1)
	}
}

// TestDaemonShedE2E: an over-quota client is shed with 429 +
// Retry-After while an in-quota client's requests complete.
func TestDaemonShedE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the daemon")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin, nil, "-accesses", "300", "-rate", "0.001", "-burst", "3")

	req := map[string]any{"scheme": "Base", "workload": "mcf_m"}
	var ok, shed int
	var sawRetryAfter bool
	for i := 0; i < 10; i++ {
		resp, body := d.post(t, "/v1/solve", "greedy", req)
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("Retry-After") != "" {
				sawRetryAfter = true
			}
		default:
			t.Fatalf("request %d: unexpected status %d (%s)", i, resp.StatusCode, body)
		}
	}
	if ok != 3 || shed != 7 {
		t.Fatalf("greedy client: ok=%d shed=%d, want 3 ok / 7 shed (burst=3)", ok, shed)
	}
	if !sawRetryAfter {
		t.Fatal("no 429 carried a Retry-After header")
	}
	if resp, body := d.post(t, "/v1/solve", "polite", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("in-quota client got %d (%s), want 200", resp.StatusCode, body)
	}
}

// TestDaemonPanicIsolationE2E: a handler panic (injected via
// RERAMD_PANIC_WORKLOAD) answers 500 while the process keeps serving —
// /healthz and a fresh solve succeed afterwards.
func TestDaemonPanicIsolationE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the daemon")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin, []string{"RERAMD_PANIC_WORKLOAD=mil_m"}, "-accesses", "300")

	resp, body := d.post(t, "/v1/solve", "", map[string]any{"scheme": "Base", "workload": "mil_m"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic request: %d (%s), want 500", resp.StatusCode, body)
	}
	if resp, _ := d.get(t, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %d, want 200", resp.StatusCode)
	}
	if resp, body := d.post(t, "/v1/solve", "", map[string]any{"scheme": "Base", "workload": "mcf_m"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after panic: %d (%s), want 200", resp.StatusCode, body)
	}
	if !strings.Contains(d.stderr.String(), "panic") {
		t.Fatal("daemon stderr never logged the panic stack")
	}
}

// TestDaemonDrainE2E: SIGTERM mid-sweep drains gracefully — new
// requests are refused with 503, the in-flight sweep finishes and its
// journal is on disk, and the process exits 0.
func TestDaemonDrainE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the daemon")
	}
	bin := buildDaemon(t)
	root := t.TempDir()
	// -jobs 1 serialises the grid so the sweep reliably outlives the
	// SIGTERM we send right after submission.
	d := startDaemon(t, bin, nil, "-accesses", "20000", "-jobs", "1", "-checkpoint-root", root)

	resp, body := d.post(t, "/v1/sweep", "", map[string]any{
		"schemes":   []string{"Base", "DRVR", "UDRVR+PR"},
		"workloads": []string{"mcf_m", "mil_m"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, body)
	}
	var doc struct {
		JobID  string `json:"job_id"`
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("submit doc: %v", err)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}

	// While draining, readiness and new compute must both answer 503.
	// The flip happens moments after signal delivery, so poll for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ = d.get(t, "/readyz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ = d.post(t, "/v1/solve", "", map[string]any{"scheme": "Base", "workload": "mcf_m"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("compute during drain: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 carried no Retry-After")
	}

	err := d.cmd.Wait()
	if err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v; stderr:\n%s", err, d.stderr.String())
	}
	stderr := d.stderr.String()
	if !strings.Contains(stderr, "draining") || !strings.Contains(stderr, "drained cleanly") {
		t.Fatalf("stderr lacks the drain narrative:\n%s", stderr)
	}
	// The in-flight sweep checkpointed: its per-digest journal directory
	// exists and holds journal state.
	jdir := filepath.Join(root, doc.Digest)
	entries, derr := os.ReadDir(jdir)
	if derr != nil {
		t.Fatalf("journal dir for in-flight sweep: %v", derr)
	}
	if len(entries) == 0 {
		t.Fatalf("journal dir %s is empty — the drained sweep never checkpointed", jdir)
	}
}
