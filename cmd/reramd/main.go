// Command reramd serves the calibrated reramsim suite as a hardened
// HTTP daemon: POST /v1/solve and /v1/sweep with admission control
// (per-client token buckets, bounded queue, 429/503 + Retry-After),
// per-request deadlines (504), content-addressed dedup of identical
// in-flight sweeps, panic isolation, and graceful drain on
// SIGINT/SIGTERM (in-flight work checkpoints, then exit 0).
//
//	reramd -addr localhost:8080 -checkpoint-root /var/lib/reramd
//
// Exit status: 0 after a clean (or forced-but-successful) drain, 1 on
// startup or serve failure, 130 on a second signal before the drain
// finished.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reramsim/internal/chaos"
	"reramsim/internal/core"
	"reramsim/internal/dist"
	"reramsim/internal/experiments"
	"reramsim/internal/obs"
	"reramsim/internal/par"
	"reramsim/internal/serve"
	"reramsim/internal/solvecache"
	"reramsim/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "localhost:8080", "API listen address")
		accesses = flag.Int("accesses", 20000, "memory accesses simulated per core")
		jobsFlag = flag.Int("jobs", 0, "max parallel solves (0 = GOMAXPROCS)")

		solverFlag = flag.String("solver", "exact", "default cold RESET-op pricing for requests that name none: exact (reference), batched (bit-identical SoA batch solves) or surrogate (calibrated table, bounded error)")

		checkpointRoot = flag.String("checkpoint-root", "", "journal each sweep under <root>/<digest>/ (crash-safe; identical re-requested sweeps resume)")
		cellTimeout    = flag.Duration("cell-timeout", 0, "per-cell deadline inside a sweep (0 = none); an exceeded cell is quarantined, not fatal")
		solveCacheDir  = flag.String("solve-cache", "", "directory for the persistent solve cache (default: disabled)")

		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing compute requests (0 = 2x GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "max requests queued for a compute slot before shedding 503 (0 = 64)")
		queueWait   = flag.Duration("queue-wait", 0, "max time a request waits for a compute slot (0 = 5s)")
		ratePerSec  = flag.Float64("rate", 0, "per-client sustained requests/second (0 = 50)")
		burst       = flag.Float64("burst", 0, "per-client burst depth (0 = 100)")

		defaultDeadline = flag.Duration("default-deadline", time.Minute, "compute deadline for requests that name none")
		maxDeadline     = flag.Duration("max-deadline", 10*time.Minute, "cap on client-requested deadlines")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "max time a signal-initiated drain waits for in-flight work before cancelling it")

		distAddr  = flag.String("dist-addr", "", "serve the distributed-sweep lease protocol on this address (default localhost:0 when -workers is set)")
		workers   = flag.String("workers", "", "comma-separated worker agent addresses (reramsim -worker -listen <addr>) to attach at boot; sweeps fan out to joined workers")
		leaseTTL  = flag.Duration("lease-ttl", 10*time.Second, "distributed lease time-to-live; a worker missing renewals this long forfeits its cells for re-lease")
		auditFrac = flag.Float64("audit-fraction", 0, "fraction of completed distributed cells re-leased to a second worker for digest cross-checks (0 = off, 1 = every cell)")
		chaosPlan = flag.String("chaos", os.Getenv("RERAM_CHAOS"), "seeded fault-injection plan for chaos testing, e.g. seed=42,latency=20ms,drop=0.1,flip=0.05,enospc=1 (default $RERAM_CHAOS)")

		obsAddr    = flag.String("obs-addr", "", "serve the standalone telemetry plane (/metrics, /progress, /debug/pprof/) on this extra address; the API port always serves /metrics itself")
		traceSpans = flag.String("trace-spans", "", "write hierarchical spans as a Chrome trace-event file (load in ui.perfetto.dev)")
		pprofAddr  = flag.String("pprof", "", "deprecated alias for -obs-addr")
	)
	flag.Parse()

	resolved, err := telemetry.ResolvePprofAlias("reramd", *obsAddr, *pprofAddr, os.Stderr)
	if err != nil {
		return fail(err)
	}
	*obsAddr = resolved
	if *auditFrac < 0 || *auditFrac > 1 {
		return fail(fmt.Errorf("-audit-fraction %g outside [0,1]", *auditFrac))
	}
	if *chaosPlan != "" {
		plan, err := chaos.ParsePlan(*chaosPlan)
		if err != nil {
			return fail(fmt.Errorf("-chaos: %w", err))
		}
		chaos.Install(plan)
		fmt.Fprintf(os.Stderr, "reramd: chaos plan installed: %s\n", plan)
	}

	// The daemon always serves /metrics on its API port, so the metric
	// plane is always on.
	obs.SetEnabled(true)
	par.SetJobs(*jobsFlag)
	if *solveCacheDir != "" {
		sc, err := solvecache.Open(*solveCacheDir)
		if err != nil {
			return fail(fmt.Errorf("-solve-cache: %w", err))
		}
		core.SetSolveCache(sc)
	}
	stack, err := telemetry.StartStack(telemetry.StackOptions{Addr: *obsAddr, TraceSpans: *traceSpans})
	if err != nil {
		return fail(err)
	}
	// Idempotent and nil-safe; closed again explicitly on the drain path.
	defer stack.Close()

	fmt.Fprintf(os.Stderr, "reramd: calibrating suite (%d accesses/core)\n", *accesses)
	suite, err := experiments.NewSuite(*accesses)
	if err != nil {
		return fail(fmt.Errorf("calibration: %w", err))
	}

	defaultSolver, err := core.ParseSolverMode(*solverFlag)
	if err != nil {
		return fail(err)
	}

	// The distributed plane is opt-in: -workers (or an explicit
	// -dist-addr) starts a persistent coordinator, and every /v1/sweep
	// with live workers fans out to the fleet; admission, deadlines and
	// drain are untouched because the coordinator runs inside the same
	// request lifecycle a local sweep does.
	var coord *dist.Coordinator
	if *workers != "" || *distAddr != "" {
		coord, err = dist.StartCoordinator(dist.CoordinatorOptions{
			Addr:          *distAddr,
			LeaseTTL:      *leaseTTL,
			AuditFraction: *auditFrac,
			Persistent:    true,
			Log:           os.Stderr,
		})
		if err != nil {
			return fail(err)
		}
		defer coord.Close()
		fmt.Fprintf(os.Stderr, "reramd: distributed coordinator on %s\n", coord.Addr())
		if *workers != "" {
			addrs := strings.Split(*workers, ",")
			for i := range addrs {
				addrs[i] = strings.TrimSpace(addrs[i])
			}
			attachCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := coord.AttachWorkers(attachCtx, addrs)
			cancel()
			if err != nil {
				fmt.Fprintf(os.Stderr, "reramd: attaching workers: %v\n", err)
			}
		}
	}

	srv, err := serve.Start(serve.Options{
		Addr: *addr,
		Backend: &serve.SuiteBackend{
			Suite:          suite,
			CheckpointRoot: *checkpointRoot,
			CellTimeout:    *cellTimeout,
			DefaultSolver:  defaultSolver,
			Dist:           coord,
		},
		Admission: serve.AdmissionConfig{
			MaxInflight: *maxInflight,
			MaxQueue:    *maxQueue,
			QueueWait:   *queueWait,
			RatePerSec:  *ratePerSec,
			Burst:       *burst,
		},
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		Log:             os.Stderr,
		// Test hook for the panic-isolation e2e; unset in production.
		TestPanicWorkload: os.Getenv("RERAMD_PANIC_WORKLOAD"),
	})
	if err != nil {
		return fail(err)
	}
	srv.SetReady(true)
	stack.SetReady(true)
	fmt.Fprintf(os.Stderr, "reramd: serving on http://%s\n", srv.Addr())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "reramd: %v: draining (in-flight work finishes and checkpoints; new requests get 503)\n", s)
	stack.SetReady(false)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(drainCtx) }()

	select {
	case err := <-drained:
		// Telemetry shuts down after the drain so /metrics on the obs
		// port stays observable while in-flight work finishes. Stack.Close
		// is idempotent — the deferred close becomes a no-op.
		if cerr := stack.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "reramd: drain: %v\n", err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "reramd: drained cleanly")
		return 0
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "reramd: second %v: aborting drain\n", s)
		srv.Close()
		return 130
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "reramd:", err)
	return 1
}
