// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures                  # run every experiment
//	figures -exp fig15       # one experiment
//	figures -accesses 5000   # simulation length per core
//	figures -skip-maps       # skip the minutes-scale surface maps
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"reramsim/internal/core"
	"reramsim/internal/experiments"
	"reramsim/internal/par"
	"reramsim/internal/solvecache"
)

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment ids (default: all); see -list")
		accesses = flag.Int("accesses", 5000, "memory accesses simulated per core")
		skipMaps = flag.Bool("skip-maps", false, "skip the surface-map experiments (fig4, fig6, fig11, fig13)")
		jobs     = flag.Int("jobs", 0, "max parallel simulations/solves (0 = GOMAXPROCS); output is identical at any setting")
		list     = flag.Bool("list", false, "list experiment ids and exit")

		solveCacheDir = flag.String("solve-cache", "", "directory for the persistent solve cache (default: disabled); results are identical with or without it")
	)
	flag.Parse()
	par.SetJobs(*jobs)
	if *solveCacheDir != "" {
		sc, err := solvecache.Open(*solveCacheDir)
		if err != nil {
			fail(fmt.Errorf("-solve-cache: %w", err))
		}
		core.SetSolveCache(sc)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	// Ctrl-C cancels between simulations: experiments already printed
	// stay on screen and the run stops at the next checkpoint instead of
	// grinding through the rest of the grid.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	suite, err := experiments.NewSuite(*accesses)
	if err != nil {
		fail(err)
	}
	suite.SetContext(ctx)

	var selected []experiments.Experiment
	if *exp == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fail(err)
			}
			selected = append(selected, e)
		}
	}

	maps := map[string]bool{"fig4": true, "fig6": true, "fig11": true, "fig13": true}
	for _, e := range selected {
		if *skipMaps && maps[e.ID] {
			fmt.Printf("== %s: skipped (-skip-maps)\n\n", e.ID)
			continue
		}
		start := time.Now()
		out, err := e.Run(suite)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "figures: interrupted during %s; results above are partial\n", e.ID)
				os.Exit(130)
			}
			fail(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Printf("== %s (%s, %v)\n%s\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond), out)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
