// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures                  # run every experiment
//	figures -exp fig15       # one experiment
//	figures -accesses 5000   # simulation length per core
//	figures -skip-maps       # skip the minutes-scale surface maps
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reramsim/internal/core"
	"reramsim/internal/experiments"
	"reramsim/internal/jobs"
	"reramsim/internal/obs"
	"reramsim/internal/par"
	"reramsim/internal/solvecache"
	"reramsim/internal/telemetry"
)

// cleanup tears the observability stack down before the process exits;
// os.Exit skips deferred calls, so every exit path routes through it
// (it is idempotent). Installed in main once the stack is up.
var cleanup = func() {}

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment ids (default: all); see -list")
		accesses = flag.Int("accesses", 5000, "memory accesses simulated per core")
		skipMaps = flag.Bool("skip-maps", false, "skip the surface-map experiments (fig4, fig6, fig11, fig13)")
		jobsFlag = flag.Int("jobs", 0, "max parallel simulations/solves (0 = GOMAXPROCS); output is identical at any setting")

		solverFlag = flag.String("solver", "exact", "cold RESET-op pricing: exact (reference), batched (bit-identical SoA batch solves) or surrogate (calibrated table, bounded error)")
		list       = flag.Bool("list", false, "list experiment ids and exit")

		checkpointDir = flag.String("checkpoint-dir", "", "journal sweep cells to this directory (crash-safe; cold start)")
		resumeDir     = flag.String("resume", "", "resume journaled sweeps from this checkpoint directory, skipping finished cells")
		cellTimeout   = flag.Duration("cell-timeout", 0, "per-cell deadline for journaled sweeps (0 = none)")

		solveCacheDir = flag.String("solve-cache", "", "directory for the persistent solve cache (default: disabled); results are identical with or without it")

		obsAddr    = flag.String("obs-addr", "", "serve live telemetry (/metrics, /healthz, /readyz, /progress, /debug/pprof/) on this address (e.g. localhost:6060)")
		traceSpans = flag.String("trace-spans", "", "write hierarchical spans as a Chrome trace-event file (load in ui.perfetto.dev)")
	)
	flag.Parse()
	par.SetJobs(*jobsFlag)
	if *checkpointDir != "" && *resumeDir != "" {
		fail(fmt.Errorf("-checkpoint-dir and -resume are mutually exclusive (resume implies the checkpoint dir)"))
	}
	if *solveCacheDir != "" {
		sc, err := solvecache.Open(*solveCacheDir)
		if err != nil {
			fail(fmt.Errorf("-solve-cache: %w", err))
		}
		core.SetSolveCache(sc)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *obsAddr != "" || *traceSpans != "" {
		obs.SetEnabled(true)
	}
	stack, err := telemetry.StartStack(telemetry.StackOptions{Addr: *obsAddr, TraceSpans: *traceSpans})
	if err != nil {
		fail(err)
	}
	cleanup = func() {
		if err := stack.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
		}
	}
	defer cleanup()

	// SIGINT/SIGTERM cancel between simulations with a typed cause:
	// experiments already printed stay on screen, journaled sweeps flush
	// a final checkpoint, and the process exits 130.
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if sig, ok := <-sigc; ok {
			cancel(&jobs.InterruptError{Sig: sig})
		}
	}()

	suite, err := experiments.NewSuite(*accesses)
	if err != nil {
		fail(err)
	}
	suite.SetContext(ctx)
	solverMode, err := core.ParseSolverMode(*solverFlag)
	if err != nil {
		fail(err)
	}
	suite = suite.ForSolver(solverMode)

	if *checkpointDir != "" || *resumeDir != "" {
		// One journal covers every figure: the digest pins the array and
		// memory configs plus the full scheme x workload universe, and
		// each figure's sub-grid addresses cells by scheme/workload key.
		dir, resume := *checkpointDir, false
		if *resumeDir != "" {
			dir, resume = *resumeDir, true
		}
		universe := make([]experiments.SimPair, 0)
		for _, sc := range experiments.SchemeNames() {
			for _, w := range experiments.Workloads() {
				universe = append(universe, experiments.SimPair{Scheme: sc, Workload: w})
			}
		}
		digest, err := suite.GridDigest(universe)
		if err != nil {
			fail(err)
		}
		eng, err := jobs.Open(jobs.Options{Dir: dir, Resume: resume, Digest: digest, CellTimeout: *cellTimeout})
		if err != nil {
			fail(err)
		}
		suite.SetEngine(eng)
		stack.SetProgress(eng.Progress)
	}
	stack.SetReady(true) // suite calibrated: work can be admitted

	var selected []experiments.Experiment
	if *exp == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fail(err)
			}
			selected = append(selected, e)
		}
	}

	maps := map[string]bool{"fig4": true, "fig6": true, "fig11": true, "fig13": true}
	partial := false
	for _, e := range selected {
		if *skipMaps && maps[e.ID] {
			fmt.Printf("== %s: skipped (-skip-maps)\n\n", e.ID)
			continue
		}
		start := time.Now()
		out, err := e.Run(suite)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "figures: interrupted during %s; results above are partial\n", e.ID)
				cleanup()
				os.Exit(jobs.ExitInterrupted)
			}
			if errors.Is(err, jobs.ErrQuarantined) {
				// The rest of the grid finished; only this figure's
				// rendering is blocked by its quarantined cell(s).
				fmt.Fprintf(os.Stderr, "figures: %s: %v\n", e.ID, err)
				partial = true
				continue
			}
			fail(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Printf("== %s (%s, %v)\n%s\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond), out)
	}
	if partial {
		cleanup()
		os.Exit(jobs.ExitPartial)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	cleanup()
	os.Exit(1)
}
