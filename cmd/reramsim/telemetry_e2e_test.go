package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

var listenLineRe = regexp.MustCompile(`telemetry listening on http://(\S+)`)

// TestTelemetryE2ESmoke launches a real sweep with -obs-addr and
// -trace-spans, scrapes /metrics and /progress mid-run, follows the SSE
// stream until the completed-cell count advances, and — after a clean
// exit 0 — checks the span trace is a valid Chrome trace-event file with
// the nested grid -> cell -> sim chain.
func TestTelemetryE2ESmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	bin := buildBinary(t)
	traceFile := filepath.Join(t.TempDir(), "spans.json")

	// The sweep must outlive several 250ms SSE ticks so the stream can
	// observe the completed count moving; on a warm machine 4 cells of
	// 40k accesses run a few seconds.
	cmd := exec.Command(bin,
		"-scheme", "Base,UDRVR+PR", "-workload", "mcf_m,mil_m",
		"-accesses", "40000", "-json",
		"-obs-addr", "127.0.0.1:0",
		"-trace-spans", traceFile,
	)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The CLI prints "telemetry listening on http://ADDR" before the
	// sweep starts; parse the resolved address off stderr.
	var addr string
	var stderrTail strings.Builder
	sc := bufio.NewScanner(stderrPipe)
	for sc.Scan() {
		line := sc.Text()
		stderrTail.WriteString(line + "\n")
		if m := listenLineRe.FindStringSubmatch(line); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no telemetry listen line on stderr:\n%s", stderrTail.String())
	}
	go io.Copy(io.Discard, stderrPipe) // keep the pipe drained

	base := "http://" + addr

	// Open the SSE stream as soon as the engine is attached (the server
	// is up before the sweep's jobs engine exists; /progress 404s until
	// then).
	var resp *http.Response
	for deadline := time.Now().Add(time.Minute); ; {
		resp, err = http.Get(base + "/progress?stream=1")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == 200 {
			break
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("/progress never got a jobs engine attached")
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer resp.Body.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	// Mid-run /metrics must be valid Prometheus text with live series.
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"# TYPE ", "runtime_goroutines", "runtime_heap_alloc_bytes"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	type prog struct {
		Total     int     `json:"total"`
		Completed int     `json:"completed"`
		Fraction  float64 `json:"fraction"`
	}
	first, last, total := -1, -1, 0
	deadline := time.Now().Add(2 * time.Minute)
	ssc := bufio.NewScanner(resp.Body)
	for ssc.Scan() && time.Now().Before(deadline) {
		line := ssc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var p prog
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		if p.Total == 0 {
			continue // stream opened before the grid registered
		}
		if first < 0 {
			first = p.Completed
		}
		last, total = p.Completed, p.Total
		if last > first || last == p.Total {
			break
		}
	}
	if first < 0 {
		t.Fatal("SSE stream delivered no grid events")
	}
	if last <= first && last != total {
		t.Errorf("completed count never advanced on the SSE stream (first %d, last %d of %d)", first, last, total)
	}
	resp.Body.Close()

	if err := cmd.Wait(); err != nil {
		t.Fatalf("sweep exit: %v", err)
	}
	if !bytes.Contains(stdout.Bytes(), []byte(`"cells"`)) {
		t.Errorf("sweep JSON output missing:\n%s", stdout.Bytes())
	}

	// The span trace must be a valid JSON array of complete events with
	// the nested chain grid -> cell -> sim.
	blob, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Dur  float64 `json:"dur"`
		Args struct {
			ID     uint64 `json:"id"`
			Parent uint64 `json:"parent"`
		} `json:"args"`
	}
	if err := json.Unmarshal(blob, &events); err != nil {
		t.Fatalf("span trace is not a valid trace-event array: %v", err)
	}
	byID := make(map[uint64]int, len(events))
	names := make(map[string]int, len(events))
	for i, ev := range events {
		if ev.Ph != "X" {
			t.Fatalf("event %d has ph %q, want X", i, ev.Ph)
		}
		byID[ev.Args.ID] = i
		names[strings.SplitN(ev.Name, ":", 2)[0]]++
	}
	for _, want := range []string{"jobs.grid", "cell", "sim", "memsys.sim", "xpoint.solve"} {
		if names[want] == 0 {
			t.Errorf("span trace has no %q spans (got %v)", want, names)
		}
	}
	for _, ev := range events {
		if !strings.HasPrefix(ev.Name, "cell:") {
			continue
		}
		pi, ok := byID[ev.Args.Parent]
		if !ok || events[pi].Name != "jobs.grid" {
			t.Errorf("cell span %q does not nest under jobs.grid", ev.Name)
		}
	}
	for _, ev := range events {
		if !strings.HasPrefix(ev.Name, "sim:") {
			continue
		}
		pi, ok := byID[ev.Args.Parent]
		if !ok || !strings.HasPrefix(events[pi].Name, "cell:") {
			t.Errorf("sim span %q does not nest under its cell", ev.Name)
		}
	}
	if t.Failed() {
		t.Logf("span name histogram: %v", names)
		fmt.Println(stderrTail.String())
	}
}
