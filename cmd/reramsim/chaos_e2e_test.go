package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// chaosPlanArg is the seeded fault plan both chaos e2e tests run under.
// ENOSPC episodes are deliberately absent: the first atomicio write in a
// coordinator process is the journal manifest at startup, so a disk-full
// episode there aborts the run before any cell executes — that fault is
// exercised where it can land mid-sweep (the internal/chaos fleet test
// and the atomicio unit tests).
const chaosPlanArg = "seed=7,latency=5ms,latency-p=0.2,drop=0.05,reset=0.05,truncate=0.05,flip=0.05"

// splitMetricsDoc splits a "-json -metrics -metrics-format json" stdout
// into the sweep document and the trailing metrics snapshot.
func splitMetricsDoc(t *testing.T, stdout []byte) (sweep []byte, counters map[string]uint64) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var first json.RawMessage
	if err := dec.Decode(&first); err != nil {
		t.Fatalf("decoding sweep document: %v\nstdout:\n%s", err, stdout)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("decoding metrics document: %v\nstdout:\n%s", err, stdout)
	}
	return first, snap.Counters
}

// TestChaosDistByteIdentity: a coordinator under a seeded fault plan,
// fed by three chaos-wrapped workers plus one worker that corrupts every
// segment it ships, must still produce sweep output byte-identical to a
// clean single-process run — and the dist.* counters must show the
// corrupt segments were refused and the offender's health score fell
// through demotion into a ban.
func TestChaosDistByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI six times under fault injection")
	}
	bin := buildBinary(t)

	local := exec.Command(bin, append(append([]string(nil), distGridArgs...), "-jobs", "8")...)
	localOut, err := local.Output()
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}

	ckpt := filepath.Join(t.TempDir(), "ckpt")
	cmd, addr, stdout, stderr := startCoordinatorProc(t, bin,
		"-lease-ttl", "1s",
		"-checkpoint-dir", ckpt,
		"-chaos", chaosPlanArg,
		"-metrics", "-metrics-format", "json",
	)
	for i := 0; i < 3; i++ {
		startWorkerProc(t, bin, addr, "RERAM_CHAOS="+chaosPlanArg)
	}
	// The vandal: every segment it ships has a byte flipped in transit.
	startWorkerProc(t, bin, addr,
		"RERAM_CHAOS="+chaosPlanArg,
		"RERAMSIM_DIST_CORRUPT_CELL=*",
	)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("coordinator exit: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "chaos plan installed") {
		t.Errorf("coordinator stderr missing chaos-plan banner:\n%s", stderr.String())
	}

	sweep, counters := splitMetricsDoc(t, []byte(stdout.String()))
	if !bytes.Equal(bytes.TrimSpace(sweep), bytes.TrimSpace(localOut)) {
		t.Errorf("chaos-run sweep output differs from clean single-process run:\n--- chaos ---\n%s\n--- clean ---\n%s", sweep, localOut)
	}
	if counters["dist.segments.bad"] == 0 {
		t.Errorf("dist.segments.bad = 0; the corrupt worker's segments were never refused\ncounters: %v", counters)
	}
	if counters["dist.health.demotions"] == 0 {
		t.Errorf("dist.health.demotions = 0; the corrupt worker was never demoted\ncounters: %v", counters)
	}
	if counters["dist.health.bans"] == 0 {
		t.Errorf("dist.health.bans = 0; the corrupt worker was never banned\ncounters: %v", counters)
	}
}

// TestChaosAuditDivergence: with -audit-fraction=1.0 every completed
// cell is re-leased to a second worker for a digest cross-check. One
// worker computes a subtly wrong (but well-formed) payload for one cell;
// whichever side of the audit it lands on, the divergence must be
// detected, the cell quarantined, and the sweep must exit 3 (partial)
// with the audit counters showing the catch.
func TestChaosAuditDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI under audit re-execution")
	}
	bin := buildBinary(t)

	const poisoned = "Base/mcf_m"
	cmd, addr, stdout, stderr := startCoordinatorProc(t, bin,
		"-lease-ttl", "1s",
		"-audit-fraction", "1.0",
		"-metrics", "-metrics-format", "json",
	)
	startWorkerProc(t, bin, addr, "RERAMSIM_DIST_DIVERGE_CELL="+poisoned)
	startWorkerProc(t, bin, addr)

	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("coordinator exit = %v, want exit code 3 (partial: quarantined cells)\nstderr:\n%s", err, stderr.String())
	}

	sweep, counters := splitMetricsDoc(t, []byte(stdout.String()))
	var doc struct {
		Cells []struct {
			Scheme      string `json:"scheme"`
			Workload    string `json:"workload"`
			Quarantined *struct {
				Reason string `json:"reason"`
			} `json:"quarantined"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(sweep, &doc); err != nil {
		t.Fatalf("sweep document: %v", err)
	}
	var quarantined int
	for _, c := range doc.Cells {
		if c.Quarantined == nil {
			continue
		}
		quarantined++
		if key := c.Scheme + "/" + c.Workload; key != poisoned {
			t.Errorf("cell %s quarantined (%s); only %s should diverge", key, c.Quarantined.Reason, poisoned)
		} else if c.Quarantined.Reason != "audit" {
			t.Errorf("cell %s quarantined with reason %q, want %q", key, c.Quarantined.Reason, "audit")
		}
	}
	if quarantined != 1 {
		t.Errorf("%d cells quarantined, want exactly 1 (%s)\nstderr:\n%s", quarantined, poisoned, stderr.String())
	}
	if counters["dist.audits.scheduled"] == 0 {
		t.Errorf("dist.audits.scheduled = 0 with -audit-fraction=1.0\ncounters: %v", counters)
	}
	if counters["dist.audits.failed"] == 0 {
		t.Errorf("dist.audits.failed = 0; the divergence was never caught\ncounters: %v", counters)
	}
	if !strings.Contains(stderr.String(), "quarantined "+poisoned+" (audit)") {
		t.Errorf("stderr missing the audit quarantine report:\n%s", stderr.String())
	}
}
