package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// distGridArgs is the 2x2 grid both distributed e2e tests run; small
// access counts keep each cell under a second.
var distGridArgs = []string{
	"-scheme", "Base,UDRVR+PR", "-workload", "mcf_m,zeu_m",
	"-accesses", "300", "-json",
}

// startCoordinatorProc launches the CLI in coordinator mode and parses
// the bound address off stderr; stderr keeps streaming into the
// returned buffer for later lease/expiry assertions.
func startCoordinatorProc(t *testing.T, bin string, extra ...string) (cmd *exec.Cmd, addr string, stdout, stderr *syncBuffer) {
	t.Helper()
	args := append(append([]string(nil), distGridArgs...), "-coordinator", "localhost:0")
	args = append(args, extra...)
	cmd = exec.Command(bin, args...)
	stdout, stderr = &syncBuffer{}, &syncBuffer{}
	cmd.Stdout = stdout
	ep, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(ep)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			stderr.WriteString(line + "\n")
			if a, ok := strings.CutPrefix(line, "reramsim: coordinator listening on "); ok {
				select {
				case addrCh <- strings.TrimSpace(a):
				default:
				}
			}
		}
	}()
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator never announced its address; stderr:\n%s", stderr.String())
	}
	return cmd, addr, stdout, stderr
}

// syncBuffer is a concurrency-safe bytes.Buffer for process output.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}
func (s *syncBuffer) WriteString(str string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b.WriteString(str)
}
func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startWorkerProc launches a CLI worker joined to addr.
func startWorkerProc(t *testing.T, bin, addr string, env ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-worker", "-join", addr, "-jobs", "2")
	cmd.Env = append(os.Environ(), env...)
	cmd.Stdout = io.Discard
	cmd.Stderr = &syncBuffer{}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

// TestDistByteIdentity4Workers: a coordinator fanning the grid to four
// worker processes must produce stdout byte-identical to a
// single-process -jobs=8 run of the same grid.
func TestDistByteIdentity4Workers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI six times")
	}
	bin := buildBinary(t)

	local := exec.Command(bin, append(append([]string(nil), distGridArgs...), "-jobs", "8")...)
	localOut, err := local.Output()
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}

	cmd, addr, stdout, stderr := startCoordinatorProc(t, bin)
	for i := 0; i < 4; i++ {
		startWorkerProc(t, bin, addr)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("coordinator exit: %v\nstderr:\n%s", err, stderr.String())
	}
	if got := stdout.String(); got != string(localOut) {
		t.Errorf("distributed output differs from single-process run:\n--- distributed ---\n%s--- local ---\n%s", got, localOut)
	}
	// Sanity: the cells really ran on workers, not in the coordinator.
	if !strings.Contains(stderr.String(), "merged Base/mcf_m from") {
		t.Errorf("coordinator stderr shows no worker merges:\n%s", stderr.String())
	}
}

// TestDistKillWorkerResume SIGKILLs the worker holding a pinned cell
// mid-grid: its lease must expire, the cell must re-lease to a healthy
// worker, and the final output must still be byte-identical to a
// single-process run.
func TestDistKillWorkerResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI several times, with lease-expiry waits")
	}
	bin := buildBinary(t)

	local := exec.Command(bin, append(append([]string(nil), distGridArgs...), "-jobs", "8")...)
	localOut, err := local.Output()
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}

	cmd, addr, stdout, stderr := startCoordinatorProc(t, bin, "-lease-ttl", "500ms")

	// The victim joins first and hangs on its pinned cell, so the grid
	// cannot finish while it lives.
	const pinned = "Base/mcf_m"
	victim := startWorkerProc(t, bin, addr, "RERAMSIM_DIST_HANG_CELL="+pinned)

	// Wait until the pinned cell is leased to the victim before killing
	// it, so the kill provably interrupts an in-flight cell.
	deadline := time.Now().Add(30 * time.Second)
	leaseLine := fmt.Sprintf("lease %s -> ", pinned)
	for !strings.Contains(stderr.String(), leaseLine) {
		if time.Now().After(deadline) {
			t.Fatalf("pinned cell never leased; stderr:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	// Two healthy workers finish the grid, including the re-leased cell.
	for i := 0; i < 2; i++ {
		startWorkerProc(t, bin, addr)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("coordinator exit: %v\nstderr:\n%s", err, stderr.String())
	}

	if !strings.Contains(stderr.String(), "lease expired: "+pinned) {
		t.Errorf("no lease-expiry line for the pinned cell; stderr:\n%s", stderr.String())
	}
	if strings.Count(stderr.String(), leaseLine) < 2 {
		t.Errorf("pinned cell was not re-leased; stderr:\n%s", stderr.String())
	}
	if got := stdout.String(); got != string(localOut) {
		t.Errorf("post-recovery output differs from single-process run:\n--- distributed ---\n%s--- local ---\n%s", got, localOut)
	}
}
