package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"reramsim/internal/dist"
	"reramsim/internal/experiments"
	"reramsim/internal/jobs"
	"reramsim/internal/par"
)

// distRunnerFactory builds the worker-side cell executor for each grid
// spec the coordinator announces. The suite is rebuilt from the wire
// config without recalibrating; the locally recomputed digest must
// match the lease's pin, so a worker can never run cells under a
// configuration that drifted from the coordinator's journal. Successive
// suites adopt the previous suite's scheme cache, so a standing worker
// serving back-to-back sweeps (differing only in seed or access budget)
// skips scheme construction after the first.
//
// RERAMSIM_DIST_HANG_CELL names a cell key that blocks forever instead
// of simulating — the crash-tolerance tests use it to pin a cell on a
// worker that is then SIGKILLed. RERAMSIM_DIST_DIVERGE_CELL names a
// cell whose payload is subtly altered (a trailing space: still valid
// JSON, different digest) — the audit e2e uses it to model a worker
// that computes a wrong-but-well-formed result.
func distRunnerFactory() func(dist.GridSpec) (dist.CellFunc, error) {
	hang := os.Getenv("RERAMSIM_DIST_HANG_CELL")
	diverge := os.Getenv("RERAMSIM_DIST_DIVERGE_CELL")
	var mu sync.Mutex
	var prev *experiments.Suite
	return func(spec dist.GridSpec) (dist.CellFunc, error) {
		suite, err := experiments.NewWorkerSuite(spec.Array, spec.Mem, spec.Solver)
		if err != nil {
			return nil, err
		}
		pairs := make([]experiments.SimPair, len(spec.Pairs))
		for i, p := range spec.Pairs {
			pairs[i] = experiments.SimPair{Scheme: p.Scheme, Workload: p.Workload}
		}
		digest, err := suite.GridDigest(pairs)
		if err != nil {
			return nil, err
		}
		if digest != spec.Digest {
			return nil, fmt.Errorf("grid digest mismatch: coordinator pinned %s, local config yields %s", spec.Digest, digest)
		}
		mu.Lock()
		suite.AdoptSchemes(prev)
		prev = suite
		mu.Unlock()
		return func(ctx context.Context, key string) ([]byte, error) {
			if hang != "" && key == hang {
				<-ctx.Done()
				return nil, context.Cause(ctx)
			}
			out, err := suite.RunCell(ctx, key)
			if err == nil && diverge != "" && (diverge == "*" || diverge == key) {
				out = append(out, ' ')
			}
			return out, err
		}, nil
	}
}

// runWorkerMode runs -worker: either a one-shot lease loop against
// -join, or a standing agent on -listen waiting for coordinators to
// attach. Returns the process exit code.
//
// RERAMSIM_DIST_CORRUPT_CELL names a cell whose shipped segment gets a
// byte flipped on the wire ("*" = every cell) — the chaos e2e uses it
// to model a worker whose results rot in transit; the coordinator must
// refuse the segment and debit the worker's health score.
func runWorkerMode(ctx context.Context, join, listen string, maxCells int) int {
	opts := dist.WorkerOptions{
		Join:      join,
		Max:       maxCells,
		NewRunner: distRunnerFactory(),
		Log:       os.Stderr,
	}
	if corrupt := os.Getenv("RERAMSIM_DIST_CORRUPT_CELL"); corrupt != "" {
		opts.MangleSegment = func(key string, seg []byte) []byte {
			if corrupt != "*" && corrupt != key {
				return seg
			}
			out := append([]byte(nil), seg...)
			out[len(out)/2] ^= 0x01
			return out
		}
	}
	if opts.Max <= 0 {
		opts.Max = par.Jobs()
	}
	var err error
	if listen != "" {
		err = dist.RunAgent(ctx, dist.AgentOptions{Addr: listen, Worker: opts})
	} else {
		err = dist.RunWorker(ctx, opts)
	}
	switch {
	case err == nil:
		return 0
	case ctx.Err() != nil:
		fmt.Fprintln(os.Stderr, "reramsim: worker interrupted")
		return jobs.ExitInterrupted
	default:
		fmt.Fprintln(os.Stderr, "reramsim:", err)
		return 1
	}
}

// runCoordinated executes the sweep by leasing its cells to joined
// workers instead of running them in-process. The engine, journal and
// report are the same objects a local run uses, so output and resume
// behaviour are identical.
func runCoordinated(suite *experiments.Suite, eng *jobs.Engine, pairs []experiments.SimPair, digest, addr string, ttl time.Duration, auditFraction float64) (*jobs.Report, error) {
	spec := dist.GridSpec{
		Array:  suite.Cfg,
		Mem:    suite.MemCfg,
		Solver: suite.Solver().String(),
		Digest: digest,
		Pairs:  make([]dist.Pair, len(pairs)),
	}
	for i, p := range pairs {
		spec.Pairs[i] = dist.Pair{Scheme: p.Scheme, Workload: p.Workload}
	}
	c, err := dist.StartCoordinator(dist.CoordinatorOptions{
		Addr:          addr,
		LeaseTTL:      ttl,
		AuditFraction: auditFraction,
		Log:           os.Stderr,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	// The e2e harness and humans alike read the bound address off stderr.
	fmt.Fprintf(os.Stderr, "reramsim: coordinator listening on %s\n", c.Addr())
	return c.RunSweep(suite.Context(), spec, eng)
}
