package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles cmd/reramsim once per test binary.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "reramsim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

var sweepArgs = []string{
	"-scheme", "Base,UDRVR+PR", "-workload", "mcf_m,mil_m",
	"-accesses", "300", "-jobs", "1", "-json",
}

func runSweepCmd(t *testing.T, bin string, extraEnv []string, extraArgs ...string) (stdout []byte, exitCode int) {
	t.Helper()
	cmd := exec.Command(bin, append(append([]string(nil), sweepArgs...), extraArgs...)...)
	cmd.Env = append(os.Environ(), extraEnv...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %s: %v\n%s", bin, err, errb.Bytes())
	}
	t.Logf("exit %d, stderr:\n%s", code, errb.Bytes())
	return out.Bytes(), code
}

// TestQuarantineExitCodeSmoke: a deliberately panicking cell must yield
// the partial exit code without failing the rest of the grid, and a
// resume without the panic hook must heal the journal — producing exit 0
// and output byte-identical to an uninterrupted run.
func TestQuarantineExitCodeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI three times")
	}
	bin := buildBinary(t)
	dir := t.TempDir()

	clean, code := runSweepCmd(t, bin, nil)
	if code != 0 {
		t.Fatalf("clean sweep exit = %d, want 0", code)
	}

	out, code := runSweepCmd(t, bin, []string{"RERAMSIM_PANIC_CELL=Base/mil_m"}, "-checkpoint-dir", dir)
	if code != 3 {
		t.Fatalf("sweep with panicking cell exit = %d, want 3 (partial)", code)
	}
	if !bytes.Contains(out, []byte(`"quarantined"`)) {
		t.Errorf("partial JSON does not mark the quarantined cell:\n%s", out)
	}
	if !bytes.Contains(out, []byte(`"UDRVR+PR"`)) {
		t.Errorf("partial JSON is missing surviving cells — the panic failed the grid:\n%s", out)
	}

	healed, code := runSweepCmd(t, bin, nil, "-resume", dir)
	if code != 0 {
		t.Fatalf("healing resume exit = %d, want 0", code)
	}
	if !bytes.Equal(healed, clean) {
		t.Errorf("healed resume output differs from uninterrupted run:\nclean: %s\nhealed: %s", clean, healed)
	}
}

// TestSigtermResumeByteIdentical: SIGTERM mid-sweep must exit 130 after
// flushing the journal, and a -resume run must finish the grid with
// output byte-identical to an uninterrupted run.
func TestSigtermResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI three times")
	}
	bin := buildBinary(t)
	dir := t.TempDir()

	clean, code := runSweepCmd(t, bin, nil)
	if code != 0 {
		t.Fatalf("clean sweep exit = %d, want 0", code)
	}

	cmd := exec.Command(bin, append(append([]string(nil), sweepArgs...), "-checkpoint-dir", dir)...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill once the first cell has checkpointed (or give up waiting and
	// let the run finish — the resume still has to be byte-identical).
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jrn"))
		if len(segs) >= 1 {
			_ = cmd.Process.Signal(syscall.SIGTERM)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	err := cmd.Wait()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("interrupted run: %v\n%s", err, errb.Bytes())
	}
	t.Logf("interrupted run exit %d, stderr:\n%s", code, errb.Bytes())
	if code != 0 && code != 130 {
		t.Fatalf("SIGTERM'd sweep exit = %d, want 130 (or 0 if it won the race)", code)
	}

	resumed, rcode := runSweepCmd(t, bin, nil, "-resume", dir)
	if rcode != 0 {
		t.Fatalf("resume exit = %d, want 0", rcode)
	}
	if !bytes.Equal(resumed, clean) {
		t.Errorf("resumed output differs from uninterrupted run:\nclean: %s\nresumed: %s", clean, resumed)
	}
}
