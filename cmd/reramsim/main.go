// Command reramsim runs memory-system simulations: voltage-drop
// mitigation schemes against Table IV workloads, reporting IPC, latency
// and energy.
//
// Usage:
//
//	reramsim -scheme UDRVR+PR -workload mcf_m -accesses 20000
//	reramsim -scheme Base,UDRVR+PR -workload mcf_m,mil_m -json
//	reramsim -scheme UDRVR+PR -workload mcf_m -metrics
//	reramsim -scheme UDRVR+PR -workload mcf_m -trace-out events.jsonl
//	reramsim -list
//
// Sweeps: comma-separated -scheme/-workload lists run the full cross
// product. With -checkpoint-dir the sweep is crash-safe — every
// finished cell is journaled, and -resume <dir> continues a killed run,
// skipping journaled cells with byte-identical final output. Exit codes
// follow the jobs contract: 0 complete, 3 partial (quarantined cells),
// 130 interrupted (SIGINT/SIGTERM).
//
// Observability: -metrics dumps the metric registry after the run
// (Prometheus-style text, or JSON with -metrics-format json), -trace-out
// streams structured events as JSONL, -obs-addr serves the live
// telemetry plane (/metrics, /healthz, /readyz, /progress and
// /debug/pprof/ on one address with graceful shutdown), and -trace-spans
// records hierarchical spans as a Chrome trace-event file for Perfetto.
// -pprof is a deprecated alias for -obs-addr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reramsim/internal/chaos"
	"reramsim/internal/core"
	"reramsim/internal/experiments"
	"reramsim/internal/fault"
	"reramsim/internal/jobs"
	"reramsim/internal/memsys"
	"reramsim/internal/obs"
	"reramsim/internal/par"
	"reramsim/internal/solvecache"
	"reramsim/internal/telemetry"
	"reramsim/internal/wear"
)

// cleanup tears the observability stack down before the process exits;
// os.Exit skips deferred calls, so every exit path routes through it
// (it is idempotent). Installed in main once the stack is up.
var cleanup = func() {}

func main() {
	var (
		scheme   = flag.String("scheme", "UDRVR+PR", "scheme name, or comma-separated list for a sweep (see -list)")
		workload = flag.String("workload", "mcf_m", "Table IV workload, or comma-separated list for a sweep (see -list)")
		accesses = flag.Int("accesses", 20000, "memory accesses simulated per core")
		caches   = flag.Bool("caches", false, "route the address stream through L1/L2/L3 caches")
		seed     = flag.Int64("seed", 1, "workload generator seed")
		lifetime = flag.Bool("lifetime", false, "also estimate the Fig. 5b system lifetime")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON")
		list     = flag.Bool("list", false, "list schemes and workloads, then exit")

		faultProfile = flag.String("fault-profile", "none", "fault-injection profile: "+strings.Join(fault.Profiles(), ", "))
		faultSeed    = flag.Int64("fault-seed", 0, "fault generator seed (0 reuses -seed)")
		maxRetries   = flag.Int("max-write-retries", 3, "write-verify retries before a cell is declared stuck")

		jobsFlag = flag.Int("jobs", 0, "max parallel simulations/solves (0 = GOMAXPROCS); output is identical at any setting")

		solverFlag = flag.String("solver", "exact", "cold RESET-op pricing: exact (reference), batched (bit-identical SoA batch solves) or surrogate (calibrated table, bounded error)")

		coordinator = flag.String("coordinator", "", "run the sweep as a distributed coordinator on this address (e.g. localhost:0), leasing cells to -worker processes; output is identical to a local run")
		auditFrac   = flag.Float64("audit-fraction", 0, "coordinator: fraction of completed cells re-leased to a second worker for digest cross-checks (0 = off, 1 = every cell); divergence quarantines the cell and flags both workers")
		chaosPlan   = flag.String("chaos", os.Getenv("RERAM_CHAOS"), "seeded fault-injection plan for chaos testing, e.g. seed=42,latency=20ms,drop=0.1,flip=0.05,enospc=1 (default $RERAM_CHAOS; results must stay byte-identical)")
		workerMode  = flag.Bool("worker", false, "run as a distributed sweep worker (with -join <addr>, or -listen <addr> for a standing agent)")
		joinAddr    = flag.String("join", "", "worker: coordinator address to join")
		listenAddr  = flag.String("listen", "", "worker: run a standing agent on this address; reramd -workers attaches coordinators to it")
		leaseTTL    = flag.Duration("lease-ttl", 10*time.Second, "coordinator: lease time-to-live; a worker missing renewals this long forfeits its cells for re-lease")

		checkpointDir = flag.String("checkpoint-dir", "", "journal sweep cells to this directory (crash-safe; cold start)")
		resumeDir     = flag.String("resume", "", "resume a journaled sweep from this checkpoint directory, skipping finished cells")
		cellTimeout   = flag.Duration("cell-timeout", 0, "per-cell deadline in a sweep (0 = none); an exceeded cell is quarantined, not fatal")

		solveCacheDir = flag.String("solve-cache", "", "directory for the persistent solve cache (default: disabled); results are identical with or without it")

		metrics    = flag.Bool("metrics", false, "dump the metric registry after the run")
		metricsFmt = flag.String("metrics-format", "text", "metrics dump format: text (Prometheus-style) or json")
		traceOut   = flag.String("trace-out", "", "write structured trace events as JSONL to this file")
		obsAddr    = flag.String("obs-addr", "", "serve live telemetry (/metrics, /healthz, /readyz, /progress, /debug/pprof/) on this address (e.g. localhost:6060)")
		traceSpans = flag.String("trace-spans", "", "write hierarchical spans as a Chrome trace-event file (load in ui.perfetto.dev)")
		pprofAddr  = flag.String("pprof", "", "deprecated alias for -obs-addr")
	)
	flag.Parse()

	if *list {
		fmt.Println("schemes:  ", strings.Join(experiments.SchemeNames(), ", "))
		fmt.Println("workloads:", strings.Join(experiments.Workloads(), ", "))
		return
	}
	schemes := splitList(*scheme)
	workloads := splitList(*workload)
	if len(schemes) == 0 || len(workloads) == 0 {
		fail(fmt.Errorf("empty -scheme or -workload"))
	}
	for _, s := range schemes {
		validateName("scheme", s, experiments.SchemeNames())
	}
	for _, w := range workloads {
		validateName("workload", w, experiments.Workloads())
	}
	validateName("fault-profile", *faultProfile, fault.Profiles())
	if *workerMode && *joinAddr == "" && *listenAddr == "" {
		fail(fmt.Errorf("-worker needs -join <addr> or -listen <addr>"))
	}
	if !*workerMode && (*joinAddr != "" || *listenAddr != "") {
		fail(fmt.Errorf("-join/-listen require -worker"))
	}
	if *workerMode && *coordinator != "" {
		fail(fmt.Errorf("-worker and -coordinator are mutually exclusive"))
	}
	if *checkpointDir != "" && *resumeDir != "" {
		fail(fmt.Errorf("-checkpoint-dir and -resume are mutually exclusive (resume implies the checkpoint dir)"))
	}
	if *maxRetries < 0 {
		fail(fmt.Errorf("negative -max-write-retries %d", *maxRetries))
	}
	if *metricsFmt != "text" && *metricsFmt != "json" {
		fail(fmt.Errorf("unknown -metrics-format %q (want text or json)", *metricsFmt))
	}
	if *auditFrac < 0 || *auditFrac > 1 {
		fail(fmt.Errorf("-audit-fraction %g outside [0,1]", *auditFrac))
	}
	if *chaosPlan != "" {
		plan, err := chaos.ParsePlan(*chaosPlan)
		if err != nil {
			fail(fmt.Errorf("-chaos: %w", err))
		}
		chaos.Install(plan)
		fmt.Fprintf(os.Stderr, "reramsim: chaos plan installed: %s\n", plan)
	}
	resolved, err := telemetry.ResolvePprofAlias("reramsim", *obsAddr, *pprofAddr, os.Stderr)
	if err != nil {
		fail(err)
	}
	*obsAddr = resolved

	par.SetJobs(*jobsFlag)
	if *solveCacheDir != "" {
		sc, err := solvecache.Open(*solveCacheDir)
		if err != nil {
			fail(fmt.Errorf("-solve-cache: %w", err))
		}
		core.SetSolveCache(sc)
	}
	if *metrics || *traceOut != "" || *obsAddr != "" || *traceSpans != "" {
		obs.SetEnabled(true)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		sink := obs.NewJSONLSink(f)
		obs.SetSink(sink)
		defer func() {
			obs.SetSink(nil)
			if err := sink.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "reramsim: trace flush:", err)
			}
			f.Close()
		}()
	}
	stack, err := telemetry.StartStack(telemetry.StackOptions{Addr: *obsAddr, TraceSpans: *traceSpans})
	if err != nil {
		fail(err)
	}
	cleanup = func() {
		if err := stack.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "reramsim:", err)
		}
	}
	defer cleanup()

	// SIGINT/SIGTERM cancel between simulations with a typed cause: the
	// suite returns what it has, the sweep journal flushes its final
	// checkpoint, and the process exits 130.
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if sig, ok := <-sigc; ok {
			cancel(&jobs.InterruptError{Sig: sig})
		}
	}()

	// Worker mode never calibrates locally: suites are rebuilt from each
	// coordinator's wire config, so it branches before NewSuite.
	if *workerMode {
		stack.SetReady(true)
		code := runWorkerMode(ctx, *joinAddr, *listenAddr, *jobsFlag)
		dumpMetrics(*metrics, *metricsFmt)
		cleanup()
		os.Exit(code)
	}

	suite, err := experiments.NewSuite(*accesses)
	if err != nil {
		fail(err)
	}
	suite.SetContext(ctx)
	suite.MemCfg.UseCaches = *caches
	suite.MemCfg.Seed = *seed
	suite.MemCfg.FaultProfile = *faultProfile
	suite.MemCfg.FaultSeed = *faultSeed
	suite.MemCfg.MaxWriteRetries = *maxRetries
	// After the MemCfg edits: the solver sub-suite snapshots the memory
	// config at creation (it still follows the parent's context live).
	solverMode, err := core.ParseSolverMode(*solverFlag)
	if err != nil {
		fail(err)
	}
	suite = suite.ForSolver(solverMode)
	stack.SetReady(true) // suite calibrated: work can be admitted

	if len(schemes) > 1 || len(workloads) > 1 || *checkpointDir != "" || *resumeDir != "" || *coordinator != "" {
		code := runSweep(suite, schemes, workloads, sweepOptions{
			checkpointDir: *checkpointDir,
			resumeDir:     *resumeDir,
			cellTimeout:   *cellTimeout,
			jsonOut:       *jsonOut,
			stack:         stack,
			coordinator:   *coordinator,
			leaseTTL:      *leaseTTL,
			auditFraction: *auditFrac,
		})
		dumpMetrics(*metrics, *metricsFmt)
		cleanup()
		os.Exit(code)
	}

	sc, err := suite.Scheme(schemes[0])
	if err != nil {
		fail(err)
	}
	res, err := suite.Sim(schemes[0], workloads[0])
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "reramsim: interrupted")
			cleanup()
			os.Exit(jobs.ExitInterrupted)
		}
		fail(err)
	}

	if *jsonOut {
		out := map[string]any{
			"scheme":            sc.Name(),
			"workload":          res.Workload,
			"ipc":               res.IPC,
			"reads":             res.Reads,
			"writes":            res.Writes,
			"avgReadLatencySec": res.AvgReadLatency,
			"avgWriteWaitSec":   res.AvgWriteWait,
			"writeBursts":       res.WriteBursts,
			"cellsWritten":      res.CellsWritten,
			"writeFailures":     res.WriteFailures,
			"energyJ": map[string]float64{
				"read": res.Energy.Read, "write": res.Energy.Write,
				"leakage": res.Energy.Leakage, "pump": res.Energy.Pump,
				"total": res.Energy.Total(),
			},
		}
		if res.Reliability != nil {
			out["reliability"] = res.Reliability
		}
		if *lifetime {
			years, err := wear.Lifetime(sc, wear.DefaultLifetimeParams())
			if err != nil {
				fail(err)
			}
			out["lifetimeYears"] = years
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
		dumpMetrics(*metrics, *metricsFmt)
		return
	}

	fmt.Printf("scheme      %s (pump %.2f V, %d stage(s))\n", sc.Name(), sc.Pump().Vout, sc.Pump().Stages)
	fmt.Printf("workload    %s\n", res.Workload)
	fmt.Printf("IPC         %.3f (aggregate, %d cores)\n", res.IPC, suite.MemCfg.Cores)
	fmt.Printf("reads       %d (avg latency %.0f ns)\n", res.Reads, res.AvgReadLatency*1e9)
	fmt.Printf("writes      %d (avg wait %.0f ns, %d bursts, %d cells)\n",
		res.Writes, res.AvgWriteWait*1e9, res.WriteBursts, res.CellsWritten)
	e := res.Energy
	fmt.Printf("energy      %.3g J (read %.3g, write %.3g, leakage %.3g, pump %.3g)\n",
		e.Total(), e.Read, e.Write, e.Leakage, e.Pump)
	if res.WriteFailures > 0 {
		fmt.Printf("WARNING     %d write failures (effective Vrst below threshold)\n", res.WriteFailures)
	}
	if rel := res.Reliability; rel != nil {
		fmt.Printf("faults      profile %s: %d retries (%d verify failures, max escalation %d, %.3g J)\n",
			rel.Profile, rel.WriteRetries, rel.VerifyFailures, rel.MaxEscalation, rel.RetryEnergy)
		fmt.Printf("degradation %d stuck cells, %d retired lines, %d uncorrectable\n",
			rel.StuckCells, rel.RetiredLines, rel.Uncorrectable)
	}

	if *lifetime {
		years, err := wear.Lifetime(sc, wear.DefaultLifetimeParams())
		if err != nil {
			fail(err)
		}
		fmt.Printf("lifetime    %.2f years under worst-case non-stop writes\n", years)
	}
	dumpMetrics(*metrics, *metricsFmt)
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

type sweepOptions struct {
	checkpointDir string
	resumeDir     string
	cellTimeout   time.Duration
	jsonOut       bool
	stack         *telemetry.Stack
	coordinator   string // non-empty: lease cells to workers instead of running locally
	leaseTTL      time.Duration
	auditFraction float64
}

// runSweep executes the schemes x workloads grid through the crash-safe
// jobs engine and renders the cells in grid order — from the journal
// payloads, so a resumed run's output is byte-identical to an
// uninterrupted one and quarantined cells are never silently re-run.
// The returned exit code follows the jobs contract.
func runSweep(suite *experiments.Suite, schemes, workloads []string, o sweepOptions) int {
	pairs := make([]experiments.SimPair, 0, len(schemes)*len(workloads))
	for _, sc := range schemes {
		for _, w := range workloads {
			pairs = append(pairs, experiments.SimPair{Scheme: sc, Workload: w})
		}
	}
	digest, err := suite.GridDigest(pairs)
	if err != nil {
		fail(err)
	}
	dir, resume := o.checkpointDir, false
	if o.resumeDir != "" {
		dir, resume = o.resumeDir, true
	}
	eng, err := jobs.Open(jobs.Options{
		Dir:          dir,
		Resume:       resume,
		Digest:       digest,
		CellTimeout:  o.cellTimeout,
		TestPanicKey: os.Getenv("RERAMSIM_PANIC_CELL"),
	})
	if err != nil {
		fail(err)
	}
	suite.SetEngine(eng)
	o.stack.SetProgress(eng.Progress)
	var rep *jobs.Report
	var runErr error
	if o.coordinator != "" {
		rep, runErr = runCoordinated(suite, eng, pairs, digest, o.coordinator, o.leaseTTL, o.auditFraction)
	} else {
		rep, runErr = suite.RunGrid(eng, pairs)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "reramsim:", runErr)
		if rep == nil {
			return 1
		}
		return rep.ExitCode(runErr)
	}
	quar := make(map[string]jobs.CellFailure, len(rep.Quarantined))
	for _, q := range rep.Quarantined {
		quar[q.Key] = q
	}

	if o.jsonOut {
		type quarOut struct {
			Reason string `json:"reason"`
			Error  string `json:"error"`
		}
		type cellOut struct {
			Scheme      string          `json:"scheme"`
			Workload    string          `json:"workload"`
			Result      json.RawMessage `json:"result,omitempty"`
			Quarantined *quarOut        `json:"quarantined,omitempty"`
		}
		cells := make([]cellOut, 0, len(pairs))
		for _, p := range pairs {
			key := p.Scheme + "/" + p.Workload
			c := cellOut{Scheme: p.Scheme, Workload: p.Workload}
			if payload, ok := rep.Done[key]; ok {
				c.Result = json.RawMessage(payload)
			} else if q, ok := quar[key]; ok {
				c.Quarantined = &quarOut{Reason: q.Reason, Error: q.Err.Error()}
			}
			cells = append(cells, c)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"cells": cells}); err != nil {
			fail(err)
		}
	} else {
		fmt.Printf("%-14s %-10s %8s %9s %9s %12s\n", "scheme", "workload", "IPC", "reads", "writes", "energy(J)")
		for _, p := range pairs {
			key := p.Scheme + "/" + p.Workload
			if payload, ok := rep.Done[key]; ok {
				var r memsys.Result
				if err := json.Unmarshal(payload, &r); err != nil {
					fail(fmt.Errorf("decoding cell %s: %w", key, err))
				}
				fmt.Printf("%-14s %-10s %8.3f %9d %9d %12.4g\n",
					p.Scheme, p.Workload, r.IPC, r.Reads, r.Writes, r.Energy.Total())
			} else if q, ok := quar[key]; ok {
				fmt.Printf("%-14s %-10s QUARANTINED (%s)\n", p.Scheme, p.Workload, q.Reason)
			}
		}
	}
	for _, q := range rep.Quarantined {
		fmt.Fprintf(os.Stderr, "reramsim: quarantined %s (%s): %v\n", q.Key, q.Reason, q.Err)
	}
	if len(rep.Stalled) > 0 {
		fmt.Fprintf(os.Stderr, "reramsim: watchdog flagged stalled cell(s): %s\n", strings.Join(rep.Stalled, ", "))
	}
	return rep.ExitCode(nil)
}

// validateName exits with a "did you mean ...?" error when name is not
// one of the valid choices.
func validateName(kind, name string, valid []string) {
	for _, v := range valid {
		if v == name {
			return
		}
	}
	fmt.Fprintf(os.Stderr, "reramsim: unknown %s %q\n", kind, name)
	if sugg := experiments.Suggest(name, valid); len(sugg) > 0 {
		fmt.Fprintf(os.Stderr, "did you mean %s?\n", strings.Join(sugg, ", "))
	} else {
		fmt.Fprintf(os.Stderr, "valid %ss: %s\n", kind, strings.Join(valid, ", "))
	}
	os.Exit(2)
}

// dumpMetrics prints the registry after the run when -metrics is given.
func dumpMetrics(enabled bool, format string) {
	if !enabled {
		return
	}
	snap := obs.Default().Snapshot()
	var err error
	if format == "json" {
		err = snap.WriteJSON(os.Stdout)
	} else {
		err = snap.WriteText(os.Stdout)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reramsim:", err)
	cleanup()
	os.Exit(1)
}
