// Command reramsim runs one memory-system simulation: a voltage-drop
// mitigation scheme against a Table IV workload, reporting IPC, latency
// and energy.
//
// Usage:
//
//	reramsim -scheme UDRVR+PR -workload mcf_m -accesses 20000
//	reramsim -scheme UDRVR+PR -workload mcf_m -metrics
//	reramsim -scheme UDRVR+PR -workload mcf_m -trace-out events.jsonl
//	reramsim -list
//
// Observability: -metrics dumps the metric registry after the run
// (Prometheus-style text, or JSON with -metrics-format json), -trace-out
// streams structured events as JSONL, and -pprof serves net/http/pprof.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"

	"reramsim/internal/core"
	"reramsim/internal/experiments"
	"reramsim/internal/fault"
	"reramsim/internal/obs"
	"reramsim/internal/par"
	"reramsim/internal/solvecache"
	"reramsim/internal/wear"
)

func main() {
	var (
		scheme   = flag.String("scheme", "UDRVR+PR", "scheme name (see -list)")
		workload = flag.String("workload", "mcf_m", "Table IV workload (see -list)")
		accesses = flag.Int("accesses", 20000, "memory accesses simulated per core")
		caches   = flag.Bool("caches", false, "route the address stream through L1/L2/L3 caches")
		seed     = flag.Int64("seed", 1, "workload generator seed")
		lifetime = flag.Bool("lifetime", false, "also estimate the Fig. 5b system lifetime")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON")
		list     = flag.Bool("list", false, "list schemes and workloads, then exit")

		faultProfile = flag.String("fault-profile", "none", "fault-injection profile: "+strings.Join(fault.Profiles(), ", "))
		faultSeed    = flag.Int64("fault-seed", 0, "fault generator seed (0 reuses -seed)")
		maxRetries   = flag.Int("max-write-retries", 3, "write-verify retries before a cell is declared stuck")

		jobs = flag.Int("jobs", 0, "max parallel simulations/solves (0 = GOMAXPROCS); output is identical at any setting")

		solveCacheDir = flag.String("solve-cache", "", "directory for the persistent solve cache (default: disabled); results are identical with or without it")

		metrics    = flag.Bool("metrics", false, "dump the metric registry after the run")
		metricsFmt = flag.String("metrics-format", "text", "metrics dump format: text (Prometheus-style) or json")
		traceOut   = flag.String("trace-out", "", "write structured trace events as JSONL to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *list {
		fmt.Println("schemes:  ", strings.Join(experiments.SchemeNames(), ", "))
		fmt.Println("workloads:", strings.Join(experiments.Workloads(), ", "))
		return
	}
	validateName("scheme", *scheme, experiments.SchemeNames())
	validateName("workload", *workload, experiments.Workloads())
	validateName("fault-profile", *faultProfile, fault.Profiles())
	if *maxRetries < 0 {
		fail(fmt.Errorf("negative -max-write-retries %d", *maxRetries))
	}
	if *metricsFmt != "text" && *metricsFmt != "json" {
		fail(fmt.Errorf("unknown -metrics-format %q (want text or json)", *metricsFmt))
	}

	par.SetJobs(*jobs)
	if *solveCacheDir != "" {
		sc, err := solvecache.Open(*solveCacheDir)
		if err != nil {
			fail(fmt.Errorf("-solve-cache: %w", err))
		}
		core.SetSolveCache(sc)
	}
	if *metrics || *traceOut != "" || *pprofAddr != "" {
		obs.SetEnabled(true)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		sink := obs.NewJSONLSink(f)
		obs.SetSink(sink)
		defer func() {
			obs.SetSink(nil)
			if err := sink.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "reramsim: trace flush:", err)
			}
			f.Close()
		}()
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "reramsim: pprof:", err)
			}
		}()
	}

	// Ctrl-C cancels between simulations: the suite returns what it has
	// instead of running the remaining work to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	suite, err := experiments.NewSuite(*accesses)
	if err != nil {
		fail(err)
	}
	suite.SetContext(ctx)
	suite.MemCfg.UseCaches = *caches
	suite.MemCfg.Seed = *seed
	suite.MemCfg.FaultProfile = *faultProfile
	suite.MemCfg.FaultSeed = *faultSeed
	suite.MemCfg.MaxWriteRetries = *maxRetries

	sc, err := suite.Scheme(*scheme)
	if err != nil {
		fail(err)
	}
	res, err := suite.Sim(*scheme, *workload)
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		out := map[string]any{
			"scheme":            sc.Name(),
			"workload":          res.Workload,
			"ipc":               res.IPC,
			"reads":             res.Reads,
			"writes":            res.Writes,
			"avgReadLatencySec": res.AvgReadLatency,
			"avgWriteWaitSec":   res.AvgWriteWait,
			"writeBursts":       res.WriteBursts,
			"cellsWritten":      res.CellsWritten,
			"writeFailures":     res.WriteFailures,
			"energyJ": map[string]float64{
				"read": res.Energy.Read, "write": res.Energy.Write,
				"leakage": res.Energy.Leakage, "pump": res.Energy.Pump,
				"total": res.Energy.Total(),
			},
		}
		if res.Reliability != nil {
			out["reliability"] = res.Reliability
		}
		if *lifetime {
			years, err := wear.Lifetime(sc, wear.DefaultLifetimeParams())
			if err != nil {
				fail(err)
			}
			out["lifetimeYears"] = years
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
		dumpMetrics(*metrics, *metricsFmt)
		return
	}

	fmt.Printf("scheme      %s (pump %.2f V, %d stage(s))\n", sc.Name(), sc.Pump().Vout, sc.Pump().Stages)
	fmt.Printf("workload    %s\n", res.Workload)
	fmt.Printf("IPC         %.3f (aggregate, %d cores)\n", res.IPC, suite.MemCfg.Cores)
	fmt.Printf("reads       %d (avg latency %.0f ns)\n", res.Reads, res.AvgReadLatency*1e9)
	fmt.Printf("writes      %d (avg wait %.0f ns, %d bursts, %d cells)\n",
		res.Writes, res.AvgWriteWait*1e9, res.WriteBursts, res.CellsWritten)
	e := res.Energy
	fmt.Printf("energy      %.3g J (read %.3g, write %.3g, leakage %.3g, pump %.3g)\n",
		e.Total(), e.Read, e.Write, e.Leakage, e.Pump)
	if res.WriteFailures > 0 {
		fmt.Printf("WARNING     %d write failures (effective Vrst below threshold)\n", res.WriteFailures)
	}
	if rel := res.Reliability; rel != nil {
		fmt.Printf("faults      profile %s: %d retries (%d verify failures, max escalation %d, %.3g J)\n",
			rel.Profile, rel.WriteRetries, rel.VerifyFailures, rel.MaxEscalation, rel.RetryEnergy)
		fmt.Printf("degradation %d stuck cells, %d retired lines, %d uncorrectable\n",
			rel.StuckCells, rel.RetiredLines, rel.Uncorrectable)
	}

	if *lifetime {
		years, err := wear.Lifetime(sc, wear.DefaultLifetimeParams())
		if err != nil {
			fail(err)
		}
		fmt.Printf("lifetime    %.2f years under worst-case non-stop writes\n", years)
	}
	dumpMetrics(*metrics, *metricsFmt)
}

// validateName exits with a "did you mean ...?" error when name is not
// one of the valid choices.
func validateName(kind, name string, valid []string) {
	for _, v := range valid {
		if v == name {
			return
		}
	}
	fmt.Fprintf(os.Stderr, "reramsim: unknown %s %q\n", kind, name)
	if sugg := experiments.Suggest(name, valid); len(sugg) > 0 {
		fmt.Fprintf(os.Stderr, "did you mean %s?\n", strings.Join(sugg, ", "))
	} else {
		fmt.Fprintf(os.Stderr, "valid %ss: %s\n", kind, strings.Join(valid, ", "))
	}
	os.Exit(2)
}

// dumpMetrics prints the registry after the run when -metrics is given.
func dumpMetrics(enabled bool, format string) {
	if !enabled {
		return
	}
	snap := obs.Default().Snapshot()
	var err error
	if format == "json" {
		err = snap.WriteJSON(os.Stdout)
	} else {
		err = snap.WriteText(os.Stdout)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reramsim:", err)
	os.Exit(1)
}
