package reramsim

// Test-only helpers that reach below the facade: the full 2-D reference
// solver and the alternative composite cell model, used by the ablation
// benchmarks and the facade tests.

import (
	"reramsim/internal/circuit"
	"reramsim/internal/device"
	"reramsim/internal/xpoint"
)

// fullSolverWorstCase solves the worst-corner 1-bit RESET of cfg with the
// full 2-D nonlinear solver and returns the cell's effective voltage.
func fullSolverWorstCase(cfg ArrayConfig) (float64, error) {
	sel := device.Tabulate(cfg.Params.LRSCell(), cfg.Params.Vrst*1.7, 4096)
	bg := device.Tabulate(cfg.Params.BackgroundCell(cfg.LRSFrac), cfg.Params.Vrst*1.7, 4096)
	g := circuit.NewGrid(cfg.Size, cfg.Size, cfg.Rwire, bg)
	g.Dev = func(r, c int) device.Device {
		if r == cfg.Size-1 && c == cfg.Size-1 {
			return sel
		}
		return bg
	}
	circuit.ResetBias{
		SelectedWL: cfg.Size - 1,
		BLVolts:    map[int]float64{cfg.Size - 1: cfg.Params.Vrst},
		Vhalf:      cfg.Params.Vrst / 2,
		Rdrv:       cfg.Rdrv,
		Rdec:       cfg.Rdec,
	}.Apply(g)
	sol, err := circuit.Solve(g, circuit.SolverOptions{})
	if err != nil {
		return 0, err
	}
	return sol.CellVoltage(cfg.Size-1, cfg.Size-1), nil
}

// compositeWorstCase evaluates the worst-corner cell with the
// ohmic-element-plus-selector composite model instead of the default
// compliance-limited cell.
func compositeWorstCase(cfg ArrayConfig) (float64, error) {
	dev := device.Tabulate(cfg.Params.CompositeLRSCell(), cfg.Params.Vrst*1.7, 4096)
	g := circuit.NewGrid(cfg.Size, cfg.Size, cfg.Rwire, dev)
	circuit.ResetBias{
		SelectedWL: cfg.Size - 1,
		BLVolts:    map[int]float64{cfg.Size - 1: cfg.Params.Vrst},
		Vhalf:      cfg.Params.Vrst / 2,
		Rdrv:       cfg.Rdrv,
		Rdec:       cfg.Rdec,
	}.Apply(g)
	sol, err := circuit.Solve(g, circuit.SolverOptions{})
	if err != nil {
		return 0, err
	}
	return sol.CellVoltage(cfg.Size-1, cfg.Size-1), nil
}

// calibratedSmall returns a calibrated config shrunk for fast tests.
func calibratedSmall(size int) ArrayConfig {
	cfg := xpoint.DefaultConfig()
	cfg.Size = size
	p, err := xpoint.CalibrateLatency(cfg, xpoint.BestCaseLatency, xpoint.WorstCaseLatency)
	if err != nil {
		panic(err)
	}
	cfg.Params = p
	return cfg
}
