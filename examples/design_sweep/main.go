// design_sweep explores the MAT design space: how array size and
// technology node trade density against the worst-case RESET latency and
// the system lifetime, for the baseline and the paper's UDRVR+PR. This is
// the kind of study an architect would run before fixing a ReRAM chip
// floorplan (the paper's §VI sensitivity analyses).
package main

import (
	"fmt"
	"log"

	"reramsim"
)

func main() {
	// Device constants are calibrated once on the default 512x512 / 20 nm
	// array (the paper's methodology) and held fixed across the sweep.
	calibrated := reramsim.CalibratedConfig()

	fmt.Println("size      node   scheme     worst RESET   lifetime")
	fmt.Println("--------  -----  ---------  -----------  ---------")
	for _, size := range []int{256, 512, 1024} {
		for _, node := range []reramsim.TechNode{reramsim.Node32nm, reramsim.Node20nm} {
			cfg := calibrated
			cfg.Size = size
			cfg.Rwire = reramsim.WireResistance(node)

			for _, build := range []func(reramsim.ArrayConfig) (*reramsim.Scheme, error){
				reramsim.Baseline, reramsim.UDRVRPR,
			} {
				s, err := build(cfg)
				if err != nil {
					log.Fatal(err)
				}
				wc, err := s.WorstWriteCost()
				if err != nil {
					log.Fatal(err)
				}
				years, err := reramsim.Lifetime(s)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%4dx%-4d %5s  %-9s  %8.0f ns  %7.1f y\n",
					size, size, node, s.Name(), wc.ResetLatency*1e9, years)
			}
		}
	}
	fmt.Println("\nLarger arrays and finer nodes suffer more IR drop; UDRVR+PR")
	fmt.Println("recovers most of the latency. At the paper's design point")
	fmt.Println("(512x512, 20 nm) it meets the >10-year lifetime requirement;")
	fmt.Println("smaller or coarser arrays write so fast that wear, not drop,")
	fmt.Println("limits them, and the 3.66 V pump cannot fully compensate a")
	fmt.Println("1Kx1K array's bit-lines.")
}
