// Quickstart: build the paper's headline scheme (UDRVR+PR), compare it
// against the baseline 512x512 cross-point array on a write-intensive
// workload, and check the 10-year lifetime requirement.
package main

import (
	"fmt"
	"log"

	"reramsim"
)

func main() {
	// A calibrated Table I array: Eq. 1 anchored to 15 ns (no drop) and
	// 2.3 us (worst-case corner of the baseline array).
	cfg := reramsim.CalibratedConfig()

	base, err := reramsim.Baseline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	udrvrpr, err := reramsim.UDRVRPR(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Worst-case write service time: the quantity voltage drop inflates.
	for _, s := range []*reramsim.Scheme{base, udrvrpr} {
		wc, err := s.WorstWriteCost()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s worst-case line write: RESET %7.0f ns, SET %4.0f ns\n",
			s.Name(), wc.ResetLatency*1e9, wc.SetLatency*1e9)
	}

	// End-to-end: simulate mcf (the paper's most write-intensive SPEC
	// workload) on the Table III system.
	rBase, err := reramsim.Simulate(base, "mcf_m", 5000)
	if err != nil {
		log.Fatal(err)
	}
	rNew, err := reramsim.Simulate(udrvrpr, "mcf_m", 5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmcf_m IPC: baseline %.3f -> UDRVR+PR %.3f (speedup %.2fx)\n",
		rBase.IPC, rNew.IPC, rNew.Speedup(rBase))
	fmt.Printf("mcf_m energy: baseline %.3g J -> UDRVR+PR %.3g J\n",
		rBase.Energy.Total(), rNew.Energy.Total())

	// The endurance side: acceleration must not wear the memory out.
	years, err := reramsim.Lifetime(udrvrpr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUDRVR+PR lifetime under worst-case non-stop writes: %.1f years (requirement: >10)\n", years)
}
