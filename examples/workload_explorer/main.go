// workload_explorer inspects what a workload's writes look like at the
// array level — the Fig. 9 / Fig. 14 analysis: per-slice RESET-bit
// distributions after Flip-N-Write, and how partition RESET and dummy
// bit-lines transform them. Pass a Table IV benchmark name as the first
// argument (default mcf_m).
package main

import (
	"fmt"
	"log"
	"math/bits"
	"os"

	"reramsim"
	"reramsim/internal/trace"
	"reramsim/internal/write"
)

func main() {
	name := "mcf_m"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bench, err := reramsim.BenchmarkByName(name)
	if err != nil {
		log.Fatal(err)
	}
	if bench.IsMix() {
		log.Fatalf("%s is a mix; explore its components instead: %v", name, bench.Components)
	}
	g, err := trace.NewGenerator(bench, 1)
	if err != nil {
		log.Fatal(err)
	}

	var hist [9]int
	var slices int
	var baseResets, baseSets, prResets, prSets, dblResets int
	const writes = 5000
	for w := 0; w < writes; {
		a := g.Next()
		if a.Kind != trace.Write {
			continue
		}
		w++
		lw, _, err := write.FlipNWrite(a.Old[:], a.New[:])
		if err != nil {
			log.Fatal(err)
		}
		for _, aw := range lw.Arrays {
			n := bits.OnesCount8(aw.Reset)
			hist[n]++
			slices++
			r, s := aw.Count()
			baseResets += r
			baseSets += s
			pr := write.PartitionReset(aw)
			pr2, ps2 := pr.Count()
			prResets += pr2
			prSets += ps2
			_, dummies := write.DummyBL(aw)
			dblResets += r + bits.OnesCount8(dummies)
		}
	}

	fmt.Printf("%s: %d writes, RPKI %.2f, WPKI %.2f\n\n", bench.Name, writes, bench.RPKI, bench.WPKI)
	fmt.Println("RESET bits per 8-bit array slice (Fig. 9):")
	for n, c := range hist {
		frac := float64(c) / float64(slices)
		fmt.Printf("  %d bits: %6.3f%%  %s\n", n, 100*frac, bar(frac))
	}

	fmt.Printf("\nwrite amplification per 64B line (Fig. 14):\n")
	perWrite := func(v int) float64 { return float64(v) / writes }
	fmt.Printf("  Flip-N-Write:   %6.1f RESETs + %6.1f SETs (%.1f%% of cells)\n",
		perWrite(baseResets), perWrite(baseSets), 100*perWrite(baseResets+baseSets)/512)
	fmt.Printf("  + PR:           %6.1f RESETs + %6.1f SETs (+%.0f%% RESETs, %.1f%% of cells)\n",
		perWrite(prResets), perWrite(prSets),
		100*float64(prResets-baseResets)/float64(baseResets),
		100*perWrite(prResets+prSets)/512)
	fmt.Printf("  + D-BL:         %6.1f RESETs (incl. dummies, +%.0f%% RESETs)\n",
		perWrite(dblResets), 100*float64(dblResets-baseResets)/float64(baseResets))
}

func bar(frac float64) string {
	n := int(frac * 60)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
