// voltage_maps renders the paper's Fig. 4-style surfaces: how effective
// RESET voltage, latency and endurance vary with a cell's position in the
// cross-point array, for the baseline and for DRVR+PR.
package main

import (
	"fmt"
	"log"
	"math"

	"reramsim"
)

func main() {
	cfg := reramsim.CalibratedConfig()

	schemes := []func(reramsim.ArrayConfig) (*reramsim.Scheme, error){
		reramsim.Baseline,
		reramsim.DRVRPR,
	}
	const blocks = 8
	for _, build := range schemes {
		s, err := build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		eff, err := s.EffectiveVrstMap(blocks)
		if err != nil {
			log.Fatal(err)
		}
		lat, err := s.LatencyMap(blocks)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s ===\n", s.Name())
		fmt.Println("effective Vrst (V); bottom row = nearest the write drivers,")
		fmt.Println("left column = nearest the row decoder:")
		printGrid(eff.Values, func(v float64) string { return fmt.Sprintf("%5.2f", v) })
		fmt.Println("RESET latency (ns):")
		printGrid(lat.Values, func(v float64) string {
			if math.IsInf(v, 1) {
				return " fail"
			}
			return fmt.Sprintf("%5.0f", v*1e9)
		})
		fmt.Printf("array RESET latency (slowest block): %.0f ns\n\n", lat.Max()*1e9)
	}
}

func printGrid(values [][]float64, format func(float64) string) {
	for i := len(values) - 1; i >= 0; i-- {
		for j, v := range values[i] {
			if j > 0 {
				fmt.Print(" ")
			}
			fmt.Print(format(v))
		}
		fmt.Println()
	}
	fmt.Println()
}
